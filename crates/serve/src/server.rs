//! The serving core: a bounded request queue drained by a std-thread
//! worker pool, fronted by admission control and the lock-free
//! [`HotTier`]. The daemon's socket layer is a thin shell over this —
//! everything testable lives here, in-process.
//!
//! # Admission
//!
//! A `synthesize` submission is either *served inline* (hot-tier hit),
//! *admitted* (queued, returning a [`Ticket`] the caller blocks on) or
//! *rejected immediately* with a typed [`ServeError`] — the queue never
//! grows past its bound and a rejected caller is never left hanging:
//!
//! * **queue capacity** — at most `queue_capacity` jobs waiting;
//! * **per-client quota** — at most `per_client_inflight` admitted jobs
//!   per client identity (queued or solving), so one greedy load
//!   generator cannot starve the fleet;
//! * **global memory budget** — every admitted job reserves an estimate
//!   of its solver footprint (encoder cells, the same unit the engine's
//!   warm-pool registry is bounded in) against `memory_budget_cells`;
//!   jobs that would push the reservation past the budget are rejected.
//!   A job whose own estimate exceeds the whole budget is still admitted
//!   when nothing else is running — the budget caps *concurrent* memory,
//!   it must not make any single problem permanently unserveable.
//!
//! Workers drain the queue in FIFO order, solve through the shared
//! [`Engine`] (one warm-pool registry and one on-disk cache across all
//! workers), publish results into the hot tier and complete tickets.

use crate::hot::HotTier;
use crate::metrics::{EngineMetrics, FaultGauges, HotTierGauges, MetricsSnapshot, RegistryGauges};
use crate::wire::WireTimings;
use sccl_collectives::Collective;
use sccl_core::incremental::IncrementalStats;
use sccl_core::pareto::{SynthesisConfig, SynthesisReport};
use sccl_hier::{HierError, HierRequest, HierSummary, Partition};
use sccl_sched::{CacheKey, Engine, Error, Provenance, SolveMode, SynthesisRequest};
use sccl_topology::Topology;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs of the serving core (and daemon).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Most jobs allowed to wait in the queue (admitted-but-unstarted).
    pub queue_capacity: usize,
    /// Worker threads draining the queue; `0` means one per available
    /// core.
    pub workers: usize,
    /// Most admitted (queued or solving) jobs per client identity.
    pub per_client_inflight: usize,
    /// Global cap on the estimated solver memory (encoder cells) of all
    /// admitted jobs together.
    pub memory_budget_cells: usize,
    /// Entries retained by the in-memory hot tier (`0` disables it).
    pub hot_capacity: usize,
    /// Per-client token-bucket refill rate, in requests per second.
    /// `0.0` (the default) disables rate limiting entirely — a clean-path
    /// daemon serves every request and reports `rate_limited == 0`.
    pub rate_limit_per_sec: f64,
    /// Token-bucket burst capacity: how many requests a client may fire
    /// back-to-back before the refill rate governs. Ignored while rate
    /// limiting is disabled.
    pub rate_limit_burst: u32,
    /// Effective wall-clock deadline (milliseconds) the brownout
    /// controller imposes on admitted jobs while active — under sustained
    /// overload the daemon degrades to partial-frontier answers before it
    /// starts rejecting. `0` disables the tightening (brownout then only
    /// reports through `health`/metrics).
    pub brownout_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 0,
            per_client_inflight: 4,
            memory_budget_cells: 64 << 20,
            hot_capacity: 256,
            rate_limit_per_sec: 0.0,
            rate_limit_burst: 8,
            brownout_deadline_ms: 2_000,
        }
    }
}

impl ServeConfig {
    /// Reject nonsense knob values with [`Error::Config`], mirroring
    /// [`sccl_sched::EngineBuilder::build`]: a zero-slot queue or a
    /// zero-job quota would reject every request, and a zero-cell budget
    /// could never admit a solve.
    fn validate(&self) -> Result<(), Error> {
        if self.queue_capacity == 0 {
            return Err(Error::Config {
                field: "queue_capacity",
                message: "a 0-slot queue rejects every request".to_string(),
            });
        }
        if self.per_client_inflight == 0 {
            return Err(Error::Config {
                field: "per_client_inflight",
                message: "a 0-job quota rejects every client".to_string(),
            });
        }
        if self.memory_budget_cells == 0 {
            return Err(Error::Config {
                field: "memory_budget_cells",
                message: "a 0-cell budget cannot admit any solve".to_string(),
            });
        }
        if !self.rate_limit_per_sec.is_finite() || self.rate_limit_per_sec < 0.0 {
            return Err(Error::Config {
                field: "rate_limit_per_sec",
                message: "the refill rate must be a finite, non-negative number \
                          (0 disables rate limiting)"
                    .to_string(),
            });
        }
        if self.rate_limit_per_sec > 0.0 && self.rate_limit_burst == 0 {
            return Err(Error::Config {
                field: "rate_limit_burst",
                message: "a 0-token burst rejects every request; set burst >= 1 \
                          or disable rate limiting"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// Why a submission was turned away or failed. Every variant carries
/// enough to tell the client what limit it hit and where it stood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full.
    QueueFull { depth: usize, capacity: usize },
    /// The client has too many admitted jobs already.
    ClientQuota {
        client: String,
        inflight: usize,
        limit: usize,
    },
    /// Admitting the job would exceed the global solver-memory budget.
    MemoryBudget {
        requested_cells: usize,
        reserved_cells: usize,
        budget_cells: usize,
    },
    /// The client's token bucket ran dry; retry after the hinted delay.
    RateLimited {
        client: String,
        /// Milliseconds until the bucket refills enough for one request.
        retry_after_ms: u64,
    },
    /// The server is shutting down.
    ShuttingDown,
    /// The request's deadline expired before *anything* was solved. (A
    /// deadline that cuts a partially solved frontier is not an error:
    /// the partial report is served with [`Served::degraded`] set.)
    Deadline { deadline_ms: u64 },
    /// The job's solve panicked; the worker caught the panic, quarantined
    /// the warm pool it was using and kept serving. Nothing about the
    /// request itself is known to be wrong — a retry may succeed.
    WorkerLost,
    /// The engine failed to synthesize (the underlying
    /// [`sccl_sched::Error`], stringified — admission errors are the
    /// typed variants above).
    Synthesis { message: String },
    /// A frontier entry failed decode-time verification against the
    /// collective's pre/post relation. The offending cache entry (if the
    /// report came from disk) has been quarantined.
    VerifyFailed { message: String },
    /// The request itself is malformed — a partition that doesn't cover
    /// the topology, a collective with no composition rule. A client
    /// error (`bad_request` on the wire), not a serving failure; a retry
    /// of the same request can never succeed.
    BadRequest { message: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => {
                write!(f, "request queue full ({depth} of {capacity} slots)")
            }
            ServeError::ClientQuota {
                client,
                inflight,
                limit,
            } => write!(
                f,
                "client `{client}` has {inflight} jobs in flight (limit {limit})"
            ),
            ServeError::MemoryBudget {
                requested_cells,
                reserved_cells,
                budget_cells,
            } => write!(
                f,
                "solve needs ~{requested_cells} encoder cells but {reserved_cells} of \
                 {budget_cells} are already reserved"
            ),
            ServeError::RateLimited {
                client,
                retry_after_ms,
            } => write!(
                f,
                "client `{client}` is rate limited; retry after {retry_after_ms}ms"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Deadline { deadline_ms } => {
                write!(
                    f,
                    "deadline of {deadline_ms}ms expired before anything was solved"
                )
            }
            ServeError::WorkerLost => {
                write!(
                    f,
                    "the worker solving this job panicked; the job was abandoned"
                )
            }
            ServeError::Synthesis { message } => write!(f, "{message}"),
            ServeError::VerifyFailed { message } => {
                write!(f, "decode-time verification failed: {message}")
            }
            ServeError::BadRequest { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Rough solver-memory footprint of one synthesis problem, in encoder
/// cells (variables + clauses, the warm-pool registry's unit). The SMT
/// encoding is dominated by per-(chunk, node, step) send variables and
/// their link constraints, so the estimate scales as
/// `nodes² × max_chunks × max_steps`; the constant is calibrated so a
/// 4-ring at chunks 4 / steps 6 lands in the tens of thousands, matching
/// observed encoder sizes within an order of magnitude — all admission
/// needs.
/// The product saturates at `usize::MAX` instead of silently wrapping on
/// huge (e.g. hierarchical) topologies: a wrapped estimate could admit an
/// enormous solve as nearly free. A saturated estimate is over budget next
/// to anything else but still admissible alone, per the lone-job rule.
pub fn solve_estimate_cells(topology: &Topology, config: &SynthesisConfig) -> usize {
    let n = topology.num_nodes().max(2);
    n.checked_mul(n)
        .and_then(|cells| cells.checked_mul(config.max_chunks.max(1)))
        .and_then(|cells| cells.checked_mul(config.max_steps.max(1)))
        .and_then(|cells| cells.checked_mul(64))
        .unwrap_or(usize::MAX)
}

/// Where a served report came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedFrom {
    /// The in-memory hot tier (served inline, never queued).
    HotTier,
    /// The on-disk algorithm cache.
    DiskCache,
    /// Freshly solved in the given mode.
    Solved(SolveMode),
}

/// A successfully served `synthesize` submission.
#[derive(Clone, Debug)]
pub struct Served {
    /// The frontier (shared with the hot tier).
    pub report: Arc<SynthesisReport>,
    /// Which tier answered.
    pub from: ServedFrom,
    /// Per-stage wall-clock, queue wait included.
    pub timings: WireTimings,
    /// Warm-sweep accounting (`None` for cache and hot-tier answers).
    pub incremental: Option<IncrementalStats>,
    /// `true` when the request's deadline expired mid-solve and `report`
    /// is the partial frontier found before the cut. Degraded reports are
    /// never persisted or hot-tier cached — a later request re-solves.
    pub degraded: bool,
}

/// The outcome a [`Ticket`] resolves to.
pub type Outcome = Result<Served, ServeError>;

/// A successfully served hierarchical submission. The composition is
/// carried as its compact [`HierSummary`] — exactly what the wire
/// serializes — rather than the full stitched algorithm.
#[derive(Clone, Debug)]
pub struct HierServed {
    /// The verified composition's reporting view.
    pub summary: HierSummary,
    /// Per-stage wall-clock, queue wait included.
    pub timings: WireTimings,
    /// At least one stage used a partial frontier because the request's
    /// deadline expired mid-search. The composition is still verified —
    /// degraded means possibly suboptimal, never unsound.
    pub degraded: bool,
}

/// The outcome a [`HierTicket`] resolves to.
pub type HierOutcome = Result<HierServed, ServeError>;

/// Completion slot shared by a ticket and the worker resolving it.
struct Slot<T> {
    outcome: Mutex<Option<T>>,
    done: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Arc<Slot<T>> {
        Arc::new(Slot {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, outcome: T) {
        *self.outcome.lock().expect("ticket lock") = Some(outcome);
        self.done.notify_all();
    }

    fn is_resolved(&self) -> bool {
        self.outcome
            .lock()
            .map(|slot| slot.is_some())
            .unwrap_or(false)
    }

    fn wait(&self) -> T {
        let mut slot = self.outcome.lock().expect("ticket lock");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.done.wait(slot).expect("ticket wait");
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.outcome.lock().expect("ticket lock");
        loop {
            if let Some(outcome) = slot.take() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            slot = self
                .done
                .wait_timeout(slot, deadline - now)
                .expect("ticket wait")
                .0;
        }
    }
}

type TicketState = Slot<Outcome>;
type HierTicketState = Slot<HierOutcome>;

/// A completion handle for one admitted job. [`Ticket::wait`] blocks
/// until a worker resolves it.
pub struct Ticket(Arc<TicketState>);

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.0.is_resolved())
            .finish()
    }
}

impl Ticket {
    fn pair() -> (Ticket, Arc<TicketState>) {
        let state = Slot::new();
        (Ticket(Arc::clone(&state)), state)
    }

    fn resolved(outcome: Outcome) -> Ticket {
        let (ticket, state) = Ticket::pair();
        state.complete(outcome);
        ticket
    }

    /// Block until the job completes and take its outcome.
    pub fn wait(self) -> Outcome {
        self.0.wait()
    }

    /// Block until the job completes or `timeout` elapses. Returns `None`
    /// on timeout, leaving the ticket usable — call again or [`Ticket::wait`]
    /// to keep waiting. A belt-and-braces bound for callers that cannot
    /// afford to trust worker liveness (workers already complete tickets
    /// with [`ServeError::WorkerLost`] when a solve panics).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        self.0.wait_timeout(timeout)
    }
}

/// A completion handle for one admitted hierarchical job — the same
/// contract as [`Ticket`], resolving to a [`HierServed`] composition.
pub struct HierTicket(Arc<HierTicketState>);

impl std::fmt::Debug for HierTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierTicket")
            .field("resolved", &self.0.is_resolved())
            .finish()
    }
}

impl HierTicket {
    fn pair() -> (HierTicket, Arc<HierTicketState>) {
        let state = Slot::new();
        (HierTicket(Arc::clone(&state)), state)
    }

    /// Block until the composition completes and take its outcome.
    pub fn wait(self) -> HierOutcome {
        self.0.wait()
    }

    /// Block until the composition completes or `timeout` elapses
    /// (`None` on timeout, ticket still usable — see
    /// [`Ticket::wait_timeout`]).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<HierOutcome> {
        self.0.wait_timeout(timeout)
    }
}

/// What an admitted job actually solves: a flat synthesis problem or a
/// hierarchical composition. Both kinds share one queue, one worker
/// pool and one reservation ledger — drain, quotas and the memory
/// budget cannot tell them apart, which is the point.
enum JobWork {
    Flat {
        request: SynthesisRequest,
        key_hash: String,
        ticket: Arc<TicketState>,
    },
    Hier {
        request: HierRequest,
        ticket: Arc<HierTicketState>,
    },
}

/// One admitted job, queued for a worker.
struct Job {
    work: JobWork,
    client: String,
    reserved_cells: usize,
    submitted: Instant,
    /// Wall-clock budget measured from `submitted` — queue wait counts
    /// against it. `None` means unbounded.
    deadline: Option<Duration>,
}

/// State behind the queue lock.
struct QueueState {
    queue: VecDeque<Job>,
    /// Admitted (queued or solving) jobs per client identity.
    inflight: HashMap<String, usize>,
    /// Estimated cells of all admitted jobs.
    reserved_cells: usize,
}

/// One client's token bucket: `tokens` refills continuously at the
/// configured rate up to the burst capacity; each admission spends one.
struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

/// The server's liveness as reported by the `health` wire verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Health {
    /// Admission has stopped (a drain or shutdown is in progress);
    /// in-flight jobs are still being finished.
    pub draining: bool,
    /// The brownout controller is active: queue depth or memory
    /// reservations crossed 3/4 of their bound and have not yet fallen
    /// back below 1/2.
    pub browned_out: bool,
}

impl Health {
    /// The single-word state the wire reports: draining wins over
    /// browned-out (a draining server stops admitting regardless of
    /// load), and a healthy idle server is simply ready.
    pub fn state(&self) -> &'static str {
        if self.draining {
            "draining"
        } else if self.browned_out {
            "browned-out"
        } else {
            "ready"
        }
    }
}

/// The in-process serving core. Construct with [`Server::start`]; share
/// via the returned `Arc` (worker threads hold clones).
pub struct Server {
    engine: Arc<Engine>,
    hot: HotTier,
    metrics: EngineMetrics,
    config: ServeConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    shutting_down: AtomicBool,
    /// Admission stopped by a graceful drain: in-flight jobs finish and
    /// are answered, new submissions bounce. Orthogonal to
    /// `shutting_down` so `health` can report "draining" while workers
    /// are still alive.
    draining: AtomicBool,
    /// The brownout controller's gauge (see [`Server::update_brownout`]).
    browned_out: AtomicBool,
    /// Per-client token buckets; lazily created, only touched when rate
    /// limiting is enabled.
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Journaled queue records replayed at startup (set once by the
    /// daemon after recovery).
    journal_replayed: std::sync::atomic::AtomicU64,
    started: Instant,
    started_unix_ms: u64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Validate the config, spawn the worker pool and return the shared
    /// serving handle.
    pub fn start(engine: Engine, config: ServeConfig) -> Result<Arc<Server>, Error> {
        config.validate()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            config.workers
        };
        let server = Arc::new(Server {
            engine: Arc::new(engine),
            hot: HotTier::new(config.hot_capacity),
            metrics: EngineMetrics::new(),
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                reserved_cells: 0,
            }),
            work_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            browned_out: AtomicBool::new(false),
            buckets: Mutex::new(HashMap::new()),
            journal_replayed: std::sync::atomic::AtomicU64::new(0),
            started: Instant::now(),
            started_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            handles.push(Self::spawn_worker(&server, i));
        }
        *server.workers.lock().expect("workers lock") = handles;
        Ok(server)
    }

    /// Spawn one worker thread. The thread holds a [`RespawnGuard`]: if it
    /// ever dies by panic (solver panics are caught *inside*
    /// [`Server::run`], so this is the backstop for panics outside that
    /// window — a poisoned lock, a metrics bug), the guard spawns a
    /// replacement so the pool never shrinks silently.
    fn spawn_worker(server: &Arc<Server>, index: usize) -> std::thread::JoinHandle<()> {
        let worker = Arc::clone(server);
        std::thread::Builder::new()
            .name(format!("sccl-serve-{index}"))
            .spawn(move || {
                let _guard = RespawnGuard {
                    server: Arc::clone(&worker),
                    index,
                };
                worker.worker_loop();
            })
            .expect("spawn worker")
    }

    /// The shared engine behind the server.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The serving-layer metrics registry.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Snapshot every metric, folding in the hot tier's and the warm
    /// registry's current occupancy plus the engine's quarantine gauges.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            HotTierGauges {
                len: self.hot.len() as u64,
                capacity: self.hot.capacity() as u64,
            },
            RegistryGauges {
                len: self.engine.warm_pool_len() as u64,
                weight: self.engine.warm_pool_weight() as u64,
            },
            FaultGauges {
                pools_quarantined: self.engine.warm_pools_quarantined(),
                cache_quarantined: self.engine.cache_stats().map_or(0, |s| s.quarantined),
            },
            crate::metrics::DaemonGauges {
                uptime_ms: self.started.elapsed().as_millis() as u64,
                started_unix_ms: self.started_unix_ms,
                journal_replayed: self.journal_replayed.load(Ordering::Relaxed),
                checkpoints_written: self
                    .engine
                    .journal()
                    .map_or(0, |journal| journal.checkpoints_written()),
                brownout_active: self.browned_out.load(Ordering::Relaxed),
                draining: self.health().draining,
            },
        )
    }

    /// `true` once [`Server::shutdown`] has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Current liveness, as the `health` wire verb reports it.
    pub fn health(&self) -> Health {
        Health {
            draining: self.draining.load(Ordering::SeqCst) || self.is_shutting_down(),
            browned_out: self.browned_out.load(Ordering::Relaxed),
        }
    }

    /// Stop admitting without stopping the workers: every in-flight job
    /// (queued or solving) still finishes and answers its ticket, new
    /// submissions are rejected with [`ServeError::ShuttingDown`].
    /// The first stage of a graceful drain — callers follow with
    /// [`Server::shutdown`] once waiters have collected their answers.
    pub fn begin_drain(&self) {
        // Chaos hook: a Sleep action stretches the drain window (so kill
        // tests can race it), a Panic simulates dying mid-drain.
        let _ = sccl_core::failpoint::fire("drain");
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Record how many journaled queue records the daemon replayed at
    /// startup (shown in the metrics snapshot).
    pub fn note_journal_replayed(&self, count: u64) {
        self.journal_replayed.store(count, Ordering::Relaxed);
    }

    /// Spend one token from `client`'s bucket, refilling it first. An
    /// empty bucket rejects with a retry-after hint derived from the
    /// refill rate. No-op while rate limiting is disabled.
    fn check_rate_limit(&self, client: &str) -> Result<(), ServeError> {
        let rate = self.config.rate_limit_per_sec;
        if rate <= 0.0 {
            return Ok(());
        }
        let burst = f64::from(self.config.rate_limit_burst);
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("bucket lock");
        let bucket = buckets.entry(client.to_string()).or_insert(TokenBucket {
            tokens: burst,
            last_refill: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * rate).min(burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let retry_after_ms = ((deficit / rate) * 1000.0).ceil() as u64;
        self.metrics.rejected_rate_limited();
        Err(ServeError::RateLimited {
            client: client.to_string(),
            retry_after_ms: retry_after_ms.max(1),
        })
    }

    /// The brownout controller: flips active when queue depth or memory
    /// reservations cross 3/4 of their bound, and only releases once both
    /// fall back below 1/2 — hysteresis so a load hovering at the
    /// threshold doesn't flap the gauge. Called under the queue lock's
    /// results (depth and reservation are a consistent pair).
    fn update_brownout(&self, queue_depth: usize, reserved_cells: usize) {
        let above = |value: usize, bound: usize, num: u128, den: u128| {
            (value as u128) * den >= (bound as u128) * num
        };
        let queue_high = above(queue_depth, self.config.queue_capacity, 3, 4);
        let memory_high = above(reserved_cells, self.config.memory_budget_cells, 3, 4);
        let queue_low = !above(queue_depth, self.config.queue_capacity, 1, 2);
        let memory_low = !above(reserved_cells, self.config.memory_budget_cells, 1, 2);
        if queue_high || memory_high {
            if !self.browned_out.swap(true, Ordering::Relaxed) {
                self.metrics.brownout_entered();
            }
        } else if queue_low && memory_low {
            self.browned_out.store(false, Ordering::Relaxed);
        }
    }

    /// Submit one synthesize job. `config` must already have the
    /// engine's defaults folded in (it is used verbatim for the cache
    /// key, the hot-tier key and the solve). Hot-tier hits are served
    /// inline on the calling thread — the returned ticket is already
    /// resolved; everything else is admitted or rejected per the module
    /// docs.
    pub fn submit(
        &self,
        topology: Topology,
        collective: Collective,
        config: SynthesisConfig,
        mode: Option<SolveMode>,
        client: &str,
    ) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(topology, collective, config, mode, client, None)
    }

    /// [`Server::submit`] with a wall-clock deadline measured from this
    /// call — queue wait counts against it. On expiry the job degrades
    /// gracefully: whatever part of the frontier was solved in time is
    /// served with [`Served::degraded`] set; only a deadline that expires
    /// with *nothing* solved resolves the ticket to
    /// [`ServeError::Deadline`]. Hot-tier and disk-cache hits always
    /// serve complete reports, deadline notwithstanding.
    pub fn submit_with_deadline(
        &self,
        topology: Topology,
        collective: Collective,
        config: SynthesisConfig,
        mode: Option<SolveMode>,
        client: &str,
        deadline: Option<std::time::Duration>,
    ) -> Result<Ticket, ServeError> {
        self.metrics.synthesize_request();
        if self.is_shutting_down() || self.draining.load(Ordering::SeqCst) {
            self.metrics.rejected_shutdown();
            return Err(ServeError::ShuttingDown);
        }
        // Rate limiting precedes every tier: the token bucket bounds the
        // *request* rate, so hot-tier hits spend tokens too.
        self.check_rate_limit(client)?;
        let submitted = Instant::now();
        let key_hash = CacheKey::new(&topology, collective, &config).content_hash();
        if let Some(report) = self.hot.lookup(&key_hash) {
            self.metrics.hot_hit();
            let total = submitted.elapsed();
            self.metrics.served(total);
            return Ok(Ticket::resolved(Ok(Served {
                report,
                from: ServedFrom::HotTier,
                timings: WireTimings {
                    lookup_micros: micros(total),
                    total_micros: micros(total),
                    ..WireTimings::default()
                },
                incremental: None,
                degraded: false,
            })));
        }

        let reserve = solve_estimate_cells(&topology, &config);
        let mut request = SynthesisRequest::new(&topology, collective).with_config(config);
        if let Some(mode) = mode {
            request = request.with_mode(mode);
        }
        let (ticket, ticket_state) = Ticket::pair();
        {
            let mut state = self.state.lock().expect("queue lock");
            let deadline = self.admit(&mut state, client, reserve, deadline)?;
            state.queue.push_back(Job {
                work: JobWork::Flat {
                    request,
                    key_hash,
                    ticket: ticket_state,
                },
                client: client.to_string(),
                reserved_cells: reserve,
                submitted,
                deadline,
            });
            self.metrics.queue_depth(state.queue.len());
            self.work_ready.notify_one();
        }
        Ok(ticket)
    }

    /// Submit one hierarchical composition job. The same admission chain
    /// as [`Server::submit`] applies — drain/shutdown, rate limiting,
    /// queue bound, per-client quota, memory budget, brownout deadline
    /// tightening — with the memory reservation sized by the *largest
    /// stage subproblem* (the biggest group or the leader graph at the
    /// stage chunk cap of 1): stages solve serially on one worker, so
    /// that is the job's peak concurrent footprint. `deadline` bounds
    /// the whole composition from this call; queue wait counts against
    /// it. There is no hot-tier lane — compositions are not cached whole;
    /// their stage solves hit the engine's disk cache per group instead.
    pub fn submit_hier(
        &self,
        request: HierRequest,
        client: &str,
        deadline: Option<Duration>,
    ) -> Result<HierTicket, ServeError> {
        self.metrics.synthesize_request();
        self.metrics.hier_request();
        if self.is_shutting_down() || self.draining.load(Ordering::SeqCst) {
            self.metrics.rejected_shutdown();
            return Err(ServeError::ShuttingDown);
        }
        self.check_rate_limit(client)?;
        let submitted = Instant::now();
        // Admission-time partition: sizes the reservation and bounces a
        // malformed carve before it occupies a queue slot. The planner
        // re-partitions when the job runs — partitioning is microseconds
        // against stage solves.
        let reserve = self.hier_estimate_cells(&request)?;
        let (ticket, ticket_state) = HierTicket::pair();
        {
            let mut state = self.state.lock().expect("queue lock");
            let deadline = self.admit(&mut state, client, reserve, deadline)?;
            state.queue.push_back(Job {
                work: JobWork::Hier {
                    request,
                    ticket: ticket_state,
                },
                client: client.to_string(),
                reserved_cells: reserve,
                submitted,
                deadline,
            });
            self.metrics.queue_depth(state.queue.len());
            self.work_ready.notify_one();
        }
        Ok(ticket)
    }

    /// The under-lock half of admission, shared by flat and hierarchical
    /// submissions: bound the queue, enforce the per-client quota and the
    /// memory budget, record the reservation, and tighten the deadline
    /// while the brownout controller is active. Returns the effective
    /// deadline for the admitted job.
    fn admit(
        &self,
        state: &mut QueueState,
        client: &str,
        reserve: usize,
        deadline: Option<Duration>,
    ) -> Result<Option<Duration>, ServeError> {
        if state.queue.len() >= self.config.queue_capacity {
            self.metrics.rejected_queue_full();
            return Err(ServeError::QueueFull {
                depth: state.queue.len(),
                capacity: self.config.queue_capacity,
            });
        }
        let inflight = state.inflight.get(client).copied().unwrap_or(0);
        if inflight >= self.config.per_client_inflight {
            self.metrics.rejected_client_quota();
            return Err(ServeError::ClientQuota {
                client: client.to_string(),
                inflight,
                limit: self.config.per_client_inflight,
            });
        }
        // The budget caps *concurrent* reservations; a lone job may
        // exceed it so no problem is permanently unserveable.
        if state.reserved_cells > 0
            && state.reserved_cells.saturating_add(reserve) > self.config.memory_budget_cells
        {
            self.metrics.rejected_memory_budget();
            return Err(ServeError::MemoryBudget {
                requested_cells: reserve,
                reserved_cells: state.reserved_cells,
                budget_cells: self.config.memory_budget_cells,
            });
        }
        // Saturating: a lone saturated estimate (huge topology) must
        // not wrap the global reservation around zero.
        state.reserved_cells = state.reserved_cells.saturating_add(reserve);
        *state.inflight.entry(client.to_string()).or_insert(0) += 1;
        self.update_brownout(state.queue.len() + 1, state.reserved_cells);
        // Brownout tightens the effective deadline: under sustained
        // overload admitted jobs degrade to partial-frontier answers
        // (freeing workers sooner) before admission starts rejecting.
        if self.browned_out.load(Ordering::Relaxed) && self.config.brownout_deadline_ms > 0 {
            let cap = Duration::from_millis(self.config.brownout_deadline_ms);
            Ok(Some(deadline.map_or(cap, |d| d.min(cap))))
        } else {
            Ok(deadline)
        }
    }

    /// The memory reservation of one hierarchical job: the largest
    /// [`solve_estimate_cells`] over its group subtopologies and its
    /// leader graph, at the planner's forced per-stage chunk cap of 1.
    /// A partition failure here is a [`ServeError::BadRequest`] — the
    /// carve can never succeed, no queue slot should be spent on it.
    fn hier_estimate_cells(&self, request: &HierRequest) -> Result<usize, ServeError> {
        let partition = Partition::new(&request.topology, &request.groups).map_err(|error| {
            ServeError::BadRequest {
                message: format!("partition: {error}"),
            }
        })?;
        let mut config = request
            .config
            .clone()
            .unwrap_or_else(|| self.engine.defaults().clone());
        config.max_chunks = 1;
        let mut cells = solve_estimate_cells(&partition.leader_topology, &config);
        for group in &partition.groups {
            cells = cells.max(solve_estimate_cells(&group.topology, &config));
        }
        Ok(cells)
    }

    /// Stop admitting, drain the queue (pending jobs are still served),
    /// and join the workers. Idempotent.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("queue lock");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        self.metrics.queue_depth(state.queue.len());
                        break job;
                    }
                    if self.is_shutting_down() {
                        return;
                    }
                    state = self.work_ready.wait(state).expect("queue wait");
                }
            };
            self.run(job);
        }
    }

    /// Forward disk-cache evictions (capacity prunes, encoder-version
    /// sweeps) to the hot tier: every hash the engine reports as pruned
    /// is invalidated so the tier never replays a frontier the durable
    /// store no longer backs.
    pub fn drain_pruned(&self) -> usize {
        let mut invalidated = 0;
        for hash in self.engine.take_pruned_hashes() {
            if self.hot.invalidate(&hash) {
                invalidated += 1;
            }
        }
        invalidated
    }

    /// Evict disk-cache entries written by a different encoder version
    /// and invalidate the hot tier's copies. Call after a deploy that
    /// bumped [`sccl_core::encoding::ENCODER_VERSION`] while the daemon
    /// kept running; returns how many stale entries the disk cache
    /// dropped.
    pub fn sweep_stale(&self) -> usize {
        let swept = self.engine.sweep_stale_cache().len();
        self.drain_pruned();
        swept
    }

    /// Solve one admitted job, publish the report, release its admission
    /// reservations and resolve its ticket.
    ///
    /// The solve-and-publish stage runs inside `catch_unwind`: a panicking
    /// solver (whose warm pool the registry has already quarantined) must
    /// not take the reservation accounting or the waiter's ticket down
    /// with it. On a caught panic the ticket resolves to
    /// [`ServeError::WorkerLost`] and the worker keeps draining the queue.
    fn run(&self, job: Job) {
        let Job {
            work,
            client,
            reserved_cells,
            submitted,
            deadline,
        } = job;
        match work {
            JobWork::Flat {
                request,
                key_hash,
                ticket,
            } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.execute(request, &key_hash, submitted, deadline)
                }))
                .unwrap_or_else(|_panic| {
                    self.metrics.panic_caught();
                    Err(ServeError::WorkerLost)
                });
                self.finish(&client, reserved_cells, submitted);
                ticket.complete(outcome);
            }
            JobWork::Hier { request, ticket } => {
                // The planner contains stage-solve panics itself (typed
                // `StagePanic`); this outer boundary is the backstop for
                // panics in the stitch/verify machinery around them.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.execute_hier(request, submitted, deadline)
                }))
                .unwrap_or_else(|_panic| {
                    self.metrics.panic_caught();
                    Err(ServeError::WorkerLost)
                });
                self.finish(&client, reserved_cells, submitted);
                ticket.complete(outcome);
            }
        }
    }

    /// Post-execution bookkeeping shared by both job kinds: record the
    /// end-to-end latency and release the admission reservations.
    fn finish(&self, client: &str, reserved_cells: usize, submitted: Instant) {
        self.metrics.served(submitted.elapsed());
        let mut state = self.state.lock().expect("queue lock");
        state.reserved_cells = state.reserved_cells.saturating_sub(reserved_cells);
        if let Some(count) = state.inflight.get_mut(client) {
            *count -= 1;
            if *count == 0 {
                state.inflight.remove(client);
            }
        }
        // Released reservations may clear the brownout (hysteresis:
        // both gauges must fall below 1/2 of their bound).
        self.update_brownout(state.queue.len(), state.reserved_cells);
    }

    /// The panic-isolated stage of [`Server::run`]: deadline bookkeeping,
    /// the engine solve, decode-time verification and hot-tier publish.
    fn execute(
        &self,
        mut request: SynthesisRequest,
        key_hash: &str,
        submitted: Instant,
        deadline: Option<std::time::Duration>,
    ) -> Outcome {
        let queue_wait = submitted.elapsed();
        if let Some(deadline) = deadline {
            // The deadline is measured from submission; hand the engine
            // only what the queue left over. Expiry while queued degrades
            // to a typed error — nothing was solved, nothing to serve.
            match deadline.checked_sub(queue_wait) {
                Some(remaining) => request = request.with_deadline(remaining),
                None => {
                    self.metrics.deadline_expired();
                    return Err(ServeError::Deadline {
                        deadline_ms: deadline.as_millis() as u64,
                    });
                }
            }
        }
        let topology = request.topology.clone();
        let collective = request.collective;
        // Kept for the one-shot re-solve after a verification quarantine:
        // the retry must pose the *same* problem (same cache key).
        let retry_template = SynthesisRequest {
            topology: topology.clone(),
            collective,
            config: request.config.clone(),
            mode: request.mode,
            deadline: None,
        };
        let mut response = match self.engine.synthesize(request) {
            Ok(response) => response,
            Err(error) => {
                self.metrics.synthesis_error();
                return Err(ServeError::Synthesis {
                    message: error.to_string(),
                });
            }
        };
        // Decode-time verification: replay every frontier algorithm
        // against the collective's pre/post relation before it can enter
        // the hot tier. A disk-backed report that fails is quarantined and
        // re-solved once, transparently; a freshly solved failure is a
        // solver bug surfaced as a typed error (and quarantined too — the
        // engine just persisted it).
        if let Err(message) = crate::verify::verify_report(&topology, collective, &response.report)
        {
            self.metrics.verify_failure();
            self.engine
                .quarantine_cached(key_hash, &format!("decode-time verification: {message}"));
            self.drain_pruned();
            let was_cache_hit = response.provenance == Provenance::CacheHit;
            let retry = was_cache_hit
                .then(|| self.engine.synthesize(retry_template).ok())
                .flatten();
            match retry {
                Some(resolved)
                    if crate::verify::verify_report(&topology, collective, &resolved.report)
                        .is_ok() =>
                {
                    response = resolved;
                }
                _ => {
                    return Err(ServeError::VerifyFailed { message });
                }
            }
        }
        let from = match response.provenance {
            Provenance::CacheHit => {
                self.metrics.disk_hit();
                ServedFrom::DiskCache
            }
            Provenance::Solved(mode) => {
                self.metrics.solved(response.timings.solve);
                ServedFrom::Solved(mode)
            }
        };
        if let Some(stats) = &response.incremental {
            self.metrics.incremental(stats);
        }
        if response.degraded {
            if response.report.entries.is_empty() {
                // The deadline cut before any candidate was decided:
                // nothing to degrade to. Counted as an expiry, not a
                // degradation — exactly one deadline outcome per request.
                self.metrics.deadline_expired();
                return Err(ServeError::Deadline {
                    deadline_ms: deadline.map(|d| d.as_millis() as u64).unwrap_or_default(),
                });
            }
            self.metrics.deadline_degraded();
        }
        let report = Arc::new(response.report);
        if !response.degraded {
            // Only complete reports enter the hot tier: a degraded
            // frontier is timing-dependent and must not be replayed
            // forever (the engine refuses to persist it for the same
            // reason).
            self.hot.insert(key_hash.to_string(), Arc::clone(&report));
        }
        // The store above may have pushed the disk cache over capacity and
        // pruned entries this tier still holds; drain the engine's
        // pruned-hash mailbox so a hash the durable store evicted can't
        // keep being replayed hot.
        self.drain_pruned();
        let total = submitted.elapsed();
        Ok(Served {
            report,
            from,
            timings: WireTimings {
                queue_micros: micros(queue_wait),
                lookup_micros: micros(response.timings.lookup),
                encode_micros: micros(response.timings.encode),
                solve_micros: micros(response.timings.solve),
                store_micros: micros(response.timings.store),
                total_micros: micros(total),
                ..WireTimings::default()
            },
            incremental: response.incremental,
            degraded: response.degraded,
        })
    }

    /// The panic-isolated stage of a hierarchical [`Server::run`]:
    /// deadline bookkeeping, the full partition → stage solves → stitch →
    /// verify pipeline, and the metrics fold.
    fn execute_hier(
        &self,
        mut request: HierRequest,
        submitted: Instant,
        deadline: Option<Duration>,
    ) -> HierOutcome {
        let queue_wait = submitted.elapsed();
        if let Some(deadline) = deadline {
            // The deadline is measured from submission; hand the planner
            // only what the queue left over (a request-level deadline set
            // by a direct library caller still applies if tighter).
            match deadline.checked_sub(queue_wait) {
                Some(remaining) => {
                    request.deadline =
                        Some(request.deadline.map_or(remaining, |d| d.min(remaining)))
                }
                None => {
                    self.metrics.deadline_expired();
                    return Err(ServeError::Deadline {
                        deadline_ms: deadline.as_millis() as u64,
                    });
                }
            }
        }
        let response = match sccl_hier::synthesize_hier(&self.engine, &request) {
            Ok(response) => response,
            Err(error) => return Err(self.hier_error(error)),
        };
        self.metrics.hier_stage_solves(
            response.stats.stage_solves as u64,
            response.stats.cache_hits as u64,
        );
        if response.degraded {
            // Exactly one deadline outcome per request, mirroring the
            // flat path: degraded-and-served or expired-and-typed-error.
            self.metrics.deadline_degraded();
            self.metrics.hier_degraded();
        }
        let total = submitted.elapsed();
        Ok(HierServed {
            summary: response.summary(),
            timings: WireTimings {
                queue_micros: micros(queue_wait),
                solve_micros: micros(response.timings.solve),
                stitch_micros: micros(response.timings.stitch),
                verify_micros: micros(response.timings.verify),
                total_micros: micros(total),
                ..WireTimings::default()
            },
            degraded: response.degraded,
        })
    }

    /// Map a planner failure onto the serving error ladder, recording
    /// the fault counters as a side effect: composition-verifier
    /// rejections count as (hier) verify failures, contained stage
    /// panics as caught panics, unachievable deadlines as expiries.
    fn hier_error(&self, error: HierError) -> ServeError {
        match error {
            HierError::Deadline { deadline_ms } => {
                self.metrics.deadline_expired();
                ServeError::Deadline { deadline_ms }
            }
            HierError::Composition(_) => {
                self.metrics.verify_failure();
                self.metrics.hier_verify_failure();
                ServeError::VerifyFailed {
                    message: error.to_string(),
                }
            }
            HierError::StagePanic { .. } => {
                self.metrics.panic_caught();
                ServeError::Synthesis {
                    message: error.to_string(),
                }
            }
            HierError::Partition(_) | HierError::Unsupported { .. } => ServeError::BadRequest {
                message: error.to_string(),
            },
            other => {
                self.metrics.synthesis_error();
                ServeError::Synthesis {
                    message: other.to_string(),
                }
            }
        }
    }
}

/// A `Duration` in microseconds, saturating instead of truncating (a
/// `as u64` cast of `as_micros` silently wraps past ~584k years of
/// microseconds — never reachable in practice, but the timings are part
/// of the wire contract and must not depend on "in practice").
fn micros(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Dropped by a worker thread on its way out. If the thread is unwinding
/// (a panic escaped [`Server::run`]'s isolation window) and the server is
/// not shutting down, a replacement worker is spawned and its handle is
/// parked in the workers list for [`Server::shutdown`] to join. A
/// replacement spawned in the narrow race after shutdown's handle-take is
/// never joined, but it observes `shutting_down` and exits immediately.
struct RespawnGuard {
    server: Arc<Server>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.server.is_shutting_down() {
            self.server.metrics.worker_respawned();
            let handle = Server::spawn_worker(&self.server, self.index);
            self.server
                .workers
                .lock()
                .expect("workers lock")
                .push(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccl_topology::builders;

    fn quick_config() -> SynthesisConfig {
        SynthesisConfig {
            max_steps: 6,
            max_chunks: 4,
            ..Default::default()
        }
    }

    fn server(config: ServeConfig) -> Arc<Server> {
        let engine = Engine::builder()
            .sequential()
            .synthesis_defaults(quick_config())
            .build()
            .expect("engine");
        Server::start(engine, config).expect("server")
    }

    #[test]
    fn solve_estimate_saturates_instead_of_wrapping() {
        // A sane problem produces a sane estimate…
        let ring = builders::ring(4, 1);
        let small = solve_estimate_cells(&ring, &quick_config());
        assert!(small > 0 && small < 1 << 30, "was: {small}");

        // …while a huge (hierarchical-scale) topology overflows the
        // nodes² × chunks × steps product. Wrapping would make the job
        // look nearly free and admit it alongside everything else;
        // saturation makes it over budget next to anything but still
        // admissible alone under the lone-job rule.
        let huge = Topology::new("huge", 1 << 20);
        let mut config = quick_config();
        config.max_chunks = 1 << 12;
        config.max_steps = 1 << 12;
        assert_eq!(solve_estimate_cells(&huge, &config), usize::MAX);

        // The estimate is monotone at the saturation boundary: more nodes
        // never shrinks it.
        let big = Topology::new("big", 1 << 10);
        assert!(solve_estimate_cells(&big, &config) <= solve_estimate_cells(&huge, &config));
    }

    #[test]
    fn nonsense_serve_knobs_are_config_errors() {
        let cases = [
            (
                ServeConfig {
                    queue_capacity: 0,
                    ..Default::default()
                },
                "queue_capacity",
            ),
            (
                ServeConfig {
                    per_client_inflight: 0,
                    ..Default::default()
                },
                "per_client_inflight",
            ),
            (
                ServeConfig {
                    memory_budget_cells: 0,
                    ..Default::default()
                },
                "memory_budget_cells",
            ),
        ];
        for (config, expected) in cases {
            let engine = Engine::builder().build().expect("engine");
            match Server::start(engine, config) {
                Err(Error::Config { field, .. }) => assert_eq!(field, expected),
                Err(other) => panic!("expected a config error, got {other}"),
                Ok(_) => panic!("nonsense knob {expected} must be rejected"),
            }
        }
    }

    #[test]
    fn a_submission_solves_then_the_hot_tier_serves_it() {
        let server = server(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let first = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "t",
            )
            .expect("admitted")
            .wait()
            .expect("served");
        assert!(matches!(first.from, ServedFrom::Solved(_)));
        assert!(first.incremental.is_some());

        let second = server
            .submit(ring, Collective::Allgather, quick_config(), None, "t")
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(second.from, ServedFrom::HotTier);
        assert!(second.incremental.is_none());
        assert_eq!(second.report, first.report, "tiers must agree");

        let snap = server.snapshot();
        assert_eq!(snap.cache.hot_hits, 1);
        assert_eq!(snap.cache.solved, 1);
        assert!(snap.cache.hit_rate > 0.0);
        assert_eq!(snap.latency_micros.solve.count, 1);
        assert_eq!(snap.latency_micros.total.count, 2);
    }

    #[test]
    fn disk_cache_prunes_invalidate_the_hot_tier() {
        let dir =
            std::env::temp_dir().join(format!("sccl-serve-prune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::builder()
            .sequential()
            .cache_dir(&dir)
            .cache_capacity(1)
            .synthesis_defaults(quick_config())
            .build()
            .expect("engine");
        let server = Server::start(
            engine,
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .expect("server");
        let ring = builders::ring(4, 1);
        // Three distinct problems through a capacity-1 store: the third
        // store trips the slack bound and prunes the two oldest entries,
        // whose hashes the worker drains into hot-tier invalidations.
        for collective in [
            Collective::Allgather,
            Collective::Broadcast { root: 0 },
            Collective::Gather { root: 0 },
        ] {
            server
                .submit(ring.clone(), collective, quick_config(), None, "t")
                .expect("admitted")
                .wait()
                .expect("served");
        }
        // The pruned problem must be re-solved — its hot copy was
        // invalidated alongside the disk eviction, so the tier cannot
        // replay a frontier the durable store no longer backs.
        let evicted = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "t",
            )
            .expect("admitted")
            .wait()
            .expect("served");
        assert!(
            matches!(evicted.from, ServedFrom::Solved(_)),
            "pruned entry replayed from {:?}",
            evicted.from
        );
        // The surviving (most recent) entry still serves hot.
        let kept = server
            .submit(
                ring,
                Collective::Gather { root: 0 },
                quick_config(),
                None,
                "t",
            )
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(kept.from, ServedFrom::HotTier);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_client_quota_rejects_the_overflowing_submission() {
        // One worker, quota 1: while the worker is busy with the first
        // submission, a second from the same client must bounce and a
        // second from a different client must queue.
        let server = server(ServeConfig {
            workers: 1,
            per_client_inflight: 1,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let big = SynthesisConfig {
            max_steps: 8,
            max_chunks: 8,
            ..Default::default()
        };
        let first = server
            .submit(ring.clone(), Collective::Allgather, big.clone(), None, "a")
            .expect("first admitted");
        let err = server
            .submit(
                ring.clone(),
                Collective::Broadcast { root: 0 },
                big.clone(),
                None,
                "a",
            )
            .expect_err("quota must reject");
        assert_eq!(
            err,
            ServeError::ClientQuota {
                client: "a".to_string(),
                inflight: 1,
                limit: 1,
            }
        );
        let other = server
            .submit(ring, Collective::Broadcast { root: 0 }, big, None, "b")
            .expect("other client admitted");
        assert!(first.wait().is_ok());
        assert!(other.wait().is_ok());
        assert_eq!(server.snapshot().rejections.client_quota, 1);
    }

    #[test]
    fn memory_budget_rejects_concurrent_over_admission() {
        let ring = builders::ring(4, 1);
        let config = quick_config();
        // The first job is deliberately slow (a bigger problem at higher
        // caps) so its reservation is still held when the second
        // submission arrives — a quick first job can finish within the
        // scheduling gap between the two submits on a loaded box.
        let slow_ring = builders::ring(6, 1);
        let slow_config = SynthesisConfig {
            max_steps: 8,
            max_chunks: 8,
            ..Default::default()
        };
        let estimate = solve_estimate_cells(&ring, &config);
        let slow_estimate = solve_estimate_cells(&slow_ring, &slow_config);
        // Budget fits the slow reservation but not a second one.
        let server = server(ServeConfig {
            workers: 1,
            memory_budget_cells: slow_estimate + estimate / 2,
            ..Default::default()
        });
        let first = server
            .submit(slow_ring, Collective::Allgather, slow_config, None, "a")
            .expect("first admitted");
        let err = server
            .submit(
                ring.clone(),
                Collective::Broadcast { root: 0 },
                config.clone(),
                None,
                "b",
            )
            .expect_err("budget must reject the second");
        assert!(
            matches!(err, ServeError::MemoryBudget { .. }),
            "was: {err:?}"
        );
        assert!(first.wait().is_ok());
        // Once the reservation is released, the same submission admits.
        let retry = server
            .submit(ring, Collective::Broadcast { root: 0 }, config, None, "b")
            .expect("admits after release");
        assert!(retry.wait().is_ok());
        assert_eq!(server.snapshot().rejections.memory_budget, 1);
    }

    #[test]
    fn queue_capacity_rejects_rather_than_queueing_unboundedly() {
        // No workers draining (workers: 1 but stalled behind a first big
        // job) — fill the queue to its bound and overflow it.
        let server = server(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            per_client_inflight: 64,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let big = SynthesisConfig {
            max_steps: 8,
            max_chunks: 8,
            ..Default::default()
        };
        // Worker picks this one up...
        let mut tickets = vec![server
            .submit(ring.clone(), Collective::Allgather, big.clone(), None, "a")
            .expect("running job admitted")];
        // ...eventually; give it a moment so the queue state is the two
        // remaining slots. Robust either way: at most 3 admissions total
        // can precede a rejection with capacity 2.
        let mut rejected = None;
        for collective in [
            Collective::Broadcast { root: 0 },
            Collective::ReduceScatter,
            Collective::Gather { root: 0 },
            Collective::Scatter { root: 0 },
        ] {
            match server.submit(ring.clone(), collective, big.clone(), None, "a") {
                Ok(ticket) => tickets.push(ticket),
                Err(err) => {
                    rejected = Some(err);
                    break;
                }
            }
        }
        let err = rejected.expect("the queue bound must reject an overflow");
        assert!(
            matches!(err, ServeError::QueueFull { capacity: 2, .. }),
            "was: {err:?}"
        );
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "admitted jobs must still be served");
        }
        assert!(server.snapshot().rejections.queue_full >= 1);
    }

    #[test]
    fn shutdown_serves_admitted_jobs_and_rejects_new_ones() {
        let server = server(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let admitted = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "a",
            )
            .expect("admitted before shutdown");
        server.shutdown();
        assert!(
            admitted.wait().is_ok(),
            "jobs admitted before shutdown must be drained"
        );
        let err = server
            .submit(ring, Collective::Allgather, quick_config(), None, "a")
            .expect_err("no admission after shutdown");
        assert_eq!(err, ServeError::ShuttingDown);
    }

    /// Serialize a report with its per-entry wall-clock zeroed: the one
    /// field that legitimately differs between two solves of the same
    /// problem (the repo-wide `same_frontier` equivalence excludes it
    /// too). Everything else must survive the serving layer untouched.
    fn timeless_json(report: &SynthesisReport) -> String {
        let mut report = report.clone();
        for entry in &mut report.entries {
            entry.synthesis_time = std::time::Duration::ZERO;
        }
        serde_json::to_string(&report).expect("report serializes")
    }

    #[test]
    fn served_reports_match_the_direct_engine_byte_for_byte() {
        let server = server(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let served = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "t",
            )
            .expect("admitted")
            .wait()
            .expect("served");
        let direct = Engine::builder()
            .sequential()
            .build()
            .expect("engine")
            .synthesize(
                SynthesisRequest::new(&ring, Collective::Allgather).with_config(quick_config()),
            )
            .expect("direct");
        assert_eq!(
            timeless_json(served.report.as_ref()),
            timeless_json(&direct.report),
            "daemon-served report must serialize identically to the in-process engine"
        );
        // And a hot-tier answer serves the *same* bytes again.
        let hot = server
            .submit(ring, Collective::Allgather, quick_config(), None, "t")
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(hot.from, ServedFrom::HotTier);
        assert_eq!(
            serde_json::to_string(hot.report.as_ref()).expect("hot json"),
            serde_json::to_string(served.report.as_ref()).expect("served json"),
        );
    }

    #[test]
    fn rate_limiting_rejects_the_burst_overflow_with_a_retry_hint() {
        // A near-zero refill rate so the burst allowance is the whole
        // story: two requests pass, the third bounces with a hint.
        let server = server(ServeConfig {
            workers: 1,
            rate_limit_per_sec: 0.001,
            rate_limit_burst: 2,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let first = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "bursty",
            )
            .expect("first spends a token");
        assert!(first.wait().is_ok());
        let second = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "bursty",
            )
            .expect("second spends the last token");
        assert!(second.wait().is_ok());
        let err = server
            .submit(
                ring.clone(),
                Collective::Allgather,
                quick_config(),
                None,
                "bursty",
            )
            .expect_err("empty bucket must reject");
        match &err {
            ServeError::RateLimited {
                client,
                retry_after_ms,
            } => {
                assert_eq!(client, "bursty");
                assert!(*retry_after_ms >= 1, "hint was {retry_after_ms}ms");
            }
            other => panic!("expected a rate-limit rejection, got {other:?}"),
        }
        // A different client has its own bucket.
        let other = server
            .submit(ring, Collective::Allgather, quick_config(), None, "calm")
            .expect("separate bucket admits");
        assert!(other.wait().is_ok());
        let snap = server.snapshot();
        assert_eq!(snap.rejections.rate_limited, 1);
        assert_eq!(snap.daemon.rate_limited, 1);
    }

    #[test]
    fn a_clean_path_reports_no_rate_limits_and_no_brownout() {
        // The default config disables rate limiting entirely; a healthy
        // daemon must report zeros, not incidental throttling.
        let server = server(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        for _ in 0..4 {
            let served = server
                .submit(
                    ring.clone(),
                    Collective::Allgather,
                    quick_config(),
                    None,
                    "steady",
                )
                .expect("admitted")
                .wait();
            assert!(served.is_ok());
        }
        let snap = server.snapshot();
        assert_eq!(snap.rejections.rate_limited, 0);
        assert_eq!(snap.daemon.rate_limited, 0);
        assert!(!snap.daemon.brownout_active);
        assert_eq!(snap.daemon.brownout_entered, 0);
        assert!(!snap.daemon.draining);
        assert_eq!(server.health().state(), "ready");
    }

    #[test]
    fn brownout_engages_with_hysteresis_and_is_observable() {
        let server = server(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        });
        // Between the release (1/2) and engage (3/4) thresholds nothing
        // changes from a cold start...
        server.update_brownout(5, 0);
        assert!(!server.health().browned_out);
        // ...crossing 3/4 engages and counts the transition once...
        server.update_brownout(6, 0);
        assert!(server.health().browned_out);
        assert_eq!(server.health().state(), "browned-out");
        server.update_brownout(7, 0);
        let snap = server.snapshot();
        assert!(snap.daemon.brownout_active);
        assert_eq!(snap.daemon.brownout_entered, 1);
        // ...the hysteresis band holds it engaged...
        server.update_brownout(5, 0);
        assert!(server.health().browned_out, "hysteresis must not flap");
        // ...and only falling below 1/2 releases it.
        server.update_brownout(3, 0);
        assert!(!server.health().browned_out);
        assert!(!server.snapshot().daemon.brownout_active);
    }

    #[test]
    fn drain_finishes_in_flight_jobs_and_rejects_new_admissions() {
        let server = server(ServeConfig {
            workers: 1,
            per_client_inflight: 8,
            ..Default::default()
        });
        let ring = builders::ring(4, 1);
        let big = SynthesisConfig {
            max_steps: 8,
            max_chunks: 8,
            ..Default::default()
        };
        // Admit work that is still in flight when the drain begins.
        let in_flight: Vec<Ticket> = [
            Collective::Allgather,
            Collective::Broadcast { root: 0 },
            Collective::Gather { root: 0 },
        ]
        .into_iter()
        .map(|collective| {
            server
                .submit(ring.clone(), collective, big.clone(), None, "a")
                .expect("admitted before drain")
        })
        .collect();
        assert_eq!(server.health().state(), "ready");
        server.begin_drain();
        assert!(server.health().draining);
        assert_eq!(server.health().state(), "draining");
        let err = server
            .submit(
                ring.clone(),
                Collective::Scatter { root: 0 },
                big,
                None,
                "a",
            )
            .expect_err("no admission while draining");
        assert_eq!(err, ServeError::ShuttingDown);
        // Zero dropped: every job admitted before the drain still answers.
        for ticket in in_flight {
            assert!(ticket.wait().is_ok(), "drained jobs must still be served");
        }
        server.shutdown();
        assert!(server.snapshot().daemon.draining);
    }
}
