//! Decode-time verification for the flat serve path: every frontier
//! algorithm is independently re-checked against its collective's pre/post
//! relation (and the topology's links and bandwidth constraints) before it
//! can enter the hot tier — the same trust posture as the hierarchical
//! path's composition verifier (`sccl_hier::verify_composition`): nothing
//! a solver or a disk read produced is replayed to clients unchecked.
//!
//! Non-combining collectives replay through [`sccl_core::Algorithm::validate`]
//! against the Table-2 spec from `sccl_collectives::relations`; combining
//! collectives (whose correctness is a statement about reduction
//! *contribution sets*, not placements) go through
//! [`sccl_core::combining::validate_combining`] with the collective's
//! required end-state.

use sccl_collectives::Collective;
use sccl_core::combining::{
    allreduce_required, reduce_required, reducescatter_required, validate_combining,
};
use sccl_core::pareto::SynthesisReport;
use sccl_topology::Topology;

/// Re-check every entry of `report` for `collective` on `topology`.
///
/// Returns `Err` with a human-readable description naming the offending
/// frontier entry and the first check that failed. The serving layer
/// treats any error as grounds to quarantine the backing cache entry.
pub fn verify_report(
    topology: &Topology,
    collective: Collective,
    report: &SynthesisReport,
) -> Result<(), String> {
    for (index, entry) in report.entries.iter().enumerate() {
        let algorithm = &entry.algorithm;
        let label = || {
            format!(
                "frontier entry {index} (chunks {}, steps {}, rounds {})",
                entry.chunks, entry.steps, entry.rounds
            )
        };
        let result: Result<(), String> = match collective {
            Collective::Reduce { root } => validate_combining(
                algorithm,
                topology,
                &reduce_required(algorithm.num_chunks, root),
            )
            .map_err(|e| e.to_string()),
            Collective::ReduceScatter => validate_combining(
                algorithm,
                topology,
                &reducescatter_required(algorithm.num_chunks, algorithm.num_nodes),
            )
            .map_err(|e| e.to_string()),
            Collective::Allreduce => validate_combining(
                algorithm,
                topology,
                &allreduce_required(algorithm.num_chunks, algorithm.num_nodes),
            )
            .map_err(|e| e.to_string()),
            _ => {
                let spec = collective.spec(algorithm.num_nodes, algorithm.per_node_chunks);
                algorithm
                    .validate(topology, &spec)
                    .map_err(|e| e.to_string())
            }
        };
        if let Err(error) = result {
            return Err(format!("{}: {error}", label()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccl_core::pareto::{pareto_synthesize, SynthesisConfig};
    use sccl_topology::builders;

    fn quick_config() -> SynthesisConfig {
        SynthesisConfig {
            max_steps: 6,
            max_chunks: 2,
            ..Default::default()
        }
    }

    #[test]
    fn clean_frontiers_verify_for_every_collective_class() {
        let ring = builders::ring(4, 1);
        for collective in [
            Collective::Allgather,
            Collective::Broadcast { root: 0 },
            Collective::Reduce { root: 0 },
            Collective::ReduceScatter,
            Collective::Allreduce,
        ] {
            let report = pareto_synthesize(&ring, collective, &quick_config()).expect("synthesis");
            assert!(
                verify_report(&ring, collective, &report).is_ok(),
                "freshly solved {collective} frontier must verify"
            );
        }
    }

    #[test]
    fn a_tampered_send_fails_verification() {
        let ring = builders::ring(4, 1);
        let mut report =
            pareto_synthesize(&ring, Collective::Allgather, &quick_config()).expect("synthesis");
        // Rewire one send across a link the ring does not have — exactly
        // the kind of silent corruption a bit-flipped cache entry or a
        // decoder bug would produce.
        let algorithm = &mut report.entries[0].algorithm;
        let send = algorithm.sends.first_mut().expect("nonempty schedule");
        send.dst = (send.src + 2) % algorithm.num_nodes;
        let error = verify_report(&ring, Collective::Allgather, &report)
            .expect_err("tampered schedule must fail");
        assert!(
            error.contains("frontier entry 0"),
            "error names the entry: {error}"
        );
    }

    #[test]
    fn a_dropped_chunk_fails_the_post_condition() {
        let ring = builders::ring(4, 1);
        let mut report =
            pareto_synthesize(&ring, Collective::Allgather, &quick_config()).expect("synthesis");
        let algorithm = &mut report.entries[0].algorithm;
        algorithm.sends.pop();
        assert!(
            verify_report(&ring, Collective::Allgather, &report).is_err(),
            "a schedule missing a send must fail verification"
        );
    }
}
