//! The daemon's wire protocol: newline-delimited JSON over a Unix domain
//! socket. One request object per line in, one response object per line
//! out, strictly in order — a protocol trivially drivable from `nc -U`,
//! a shell script or any language with a JSON library.
//!
//! # Requests
//!
//! Every request carries a `verb`:
//!
//! ```json
//! {"verb": "synthesize", "topology": "ring:4", "collective": "allgather",
//!  "root": 0, "max_steps": 6, "max_chunks": 4, "k": 1,
//!  "mode": "sequential", "client": "loadgen-3"}
//! {"verb": "metrics"}
//! {"verb": "shutdown"}
//! ```
//!
//! For `synthesize`, only `topology` and `collective` are required.
//! `topology` is a builder spec (`ring:N`, `uniring:N`, `chain:N`,
//! `star:N`, `fc:N`, `hypercube:D`, `nvswitch:N`, `mesh:RxC`, `dgx1`,
//! `dgx1-single`, `amd`); `collective` is a collective name with an
//! optional `root` (default 0) for rooted collectives.
//! `max_steps`, `max_chunks` and `k` override the daemon engine's search
//! defaults; `mode` (`"sequential"` | `"parallel"`) overrides its solve
//! mode. `client` names the requester for per-client admission quotas
//! (connections that don't identify share the `"anonymous"` quota).
//! `deadline_ms` bounds the request's wall clock from admission: on
//! expiry the daemon answers with whatever partial frontier was already
//! solved (provenance suffixed `:degraded`), or a `"deadline"` error if
//! nothing was.
//!
//! A `groups` field (`"auto"`, `"uniform:M"` or an explicit `"0,1;2,3"`
//! partition) routes the request through the hierarchical planner: the
//! stage solves run through the daemon's engine (hot tier and disk cache
//! apply per group) and the success response carries `"provenance":
//! "hier"` with a composition summary as its report payload. `pick`
//! (`"latency"` | `"bandwidth"`) chooses the frontier entry each stage
//! uses and is rejected without `groups`. Hierarchical requests pass
//! through the same admission chain as flat ones (queue, quotas, memory
//! budget, rate limits, drain) and honour `deadline_ms`: each stage
//! solve is handed the remaining wall clock, an expiry mid-search
//! degrades the answer (provenance `"hier:degraded"`, stages picked
//! from partial frontiers, composition still verified), and only a
//! deadline that leaves no composition achievable at all is a
//! `"deadline"` error.
//!
//! # Responses
//!
//! Success responses carry `"ok": true` plus verb-specific payload; every
//! failure is `{"ok": false, "kind": ..., "error": ...}` where `kind` is a
//! machine-matchable cause (`"queue_full"`, `"client_quota"`,
//! `"memory_budget"`, `"shutdown"`, `"bad_request"`, `"synthesis"`,
//! `"deadline"`). A `synthesize` success carries the report (bytes
//! identical to what the in-process `Engine::synthesize` would have
//! serialized), its provenance (`"hot"`, `"cache"`, `"solved:sequential"`,
//! `"solved:parallel"`, each suffixed `:degraded` when a deadline cut the
//! frontier short) and per-stage timings in microseconds.

use sccl_collectives::Collective;
use sccl_sched::SolveMode;
use sccl_topology::{builders, Topology};
use serde::{de::Error as _, Content, Deserialize, Deserializer, Serialize, Serializer};

/// One request line, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum WireRequest {
    Synthesize(WireSynthesize),
    Metrics,
    /// Liveness probe: answers `ready`, `draining` or `browned-out`
    /// without touching the queue.
    Health,
    /// Graceful drain: stop admitting, finish in-flight jobs, journal
    /// whatever is pending, then exit cleanly.
    Drain,
    Shutdown,
}

/// The `synthesize` verb's payload.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSynthesize {
    /// Topology builder spec, e.g. `ring:8` or `dgx1`.
    pub topology: String,
    /// Collective name, e.g. `allgather`.
    pub collective: String,
    /// Root rank for rooted collectives (default 0).
    pub root: usize,
    /// Search-cap overrides; `None` uses the daemon engine's defaults.
    pub max_steps: Option<usize>,
    pub max_chunks: Option<usize>,
    pub k: Option<u64>,
    /// Solve-mode override (`"sequential"` / `"parallel"`).
    pub mode: Option<SolveMode>,
    /// Hierarchical composition: a group spec (`auto`, `uniform:M` or an
    /// explicit `0,1;2,3` partition). Presence routes the request through
    /// the hierarchical planner; the response carries a composition
    /// summary instead of a frontier report.
    pub groups: Option<String>,
    /// Frontier entry each hierarchical stage uses (`"latency"` /
    /// `"bandwidth"`); only meaningful with `groups`.
    pub pick: Option<String>,
    /// Admission-quota identity (default `"anonymous"`).
    pub client: String,
    /// Wall-clock budget in milliseconds, measured from admission (queue
    /// wait counts). Expiry degrades the answer to the partial frontier
    /// rather than cancelling it — for hierarchical requests each stage
    /// solve is handed the remaining budget.
    pub deadline_ms: Option<u64>,
}

impl WireSynthesize {
    /// A minimal request for `collective` on `topology` with every
    /// optional knob left to the daemon's defaults.
    pub fn new(topology: impl Into<String>, collective: impl Into<String>) -> Self {
        WireSynthesize {
            topology: topology.into(),
            collective: collective.into(),
            root: 0,
            max_steps: None,
            max_chunks: None,
            k: None,
            mode: None,
            groups: None,
            pick: None,
            client: "anonymous".to_string(),
            deadline_ms: None,
        }
    }

    /// Bound the request's wall clock (milliseconds from admission).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Route the request through the hierarchical planner with `groups`
    /// (`auto`, `uniform:M` or an explicit `0,1;2,3` partition).
    pub fn with_groups(mut self, groups: impl Into<String>) -> Self {
        self.groups = Some(groups.into());
        self
    }

    /// Name the requesting client for admission accounting.
    pub fn with_client(mut self, client: impl Into<String>) -> Self {
        self.client = client.into();
        self
    }

    /// Override the step/chunk search caps.
    pub fn with_caps(mut self, max_steps: usize, max_chunks: usize) -> Self {
        self.max_steps = Some(max_steps);
        self.max_chunks = Some(max_chunks);
        self
    }

    /// Resolve the topology spec to a concrete [`Topology`].
    ///
    /// The builders `assert!` on degenerate sizes (e.g. a 1-node chain);
    /// a daemon parsing untrusted wire input must answer, not die, so
    /// the panic is caught and reported as a spec error.
    pub fn parse_topology(&self) -> Result<Topology, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            builders::parse_spec(&self.topology)
        }))
        .map_err(|_| format!("degenerate topology spec `{}`", self.topology))?
        .ok_or_else(|| format!("unknown topology spec `{}`", self.topology))
    }

    /// Resolve the collective name (and root) to a [`Collective`].
    pub fn parse_collective(&self) -> Result<Collective, String> {
        Collective::parse_spec(&self.collective, self.root)
            .ok_or_else(|| format!("unknown collective `{}`", self.collective))
    }
}

fn mode_name(mode: SolveMode) -> &'static str {
    match mode {
        SolveMode::Sequential => "sequential",
        SolveMode::Parallel => "parallel",
    }
}

fn parse_mode(name: &str) -> Result<SolveMode, String> {
    match name {
        "sequential" => Ok(SolveMode::Sequential),
        "parallel" => Ok(SolveMode::Parallel),
        other => Err(format!(
            "unknown mode `{other}` (expected `sequential` or `parallel`)"
        )),
    }
}

impl Serialize for WireRequest {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut fields: Vec<(String, Content)> = Vec::new();
        let push = |fields: &mut Vec<(String, Content)>, key: &str, value: Content| {
            fields.push((key.to_string(), value));
        };
        match self {
            WireRequest::Metrics => push(&mut fields, "verb", Content::Str("metrics".into())),
            WireRequest::Health => push(&mut fields, "verb", Content::Str("health".into())),
            WireRequest::Drain => push(&mut fields, "verb", Content::Str("drain".into())),
            WireRequest::Shutdown => push(&mut fields, "verb", Content::Str("shutdown".into())),
            WireRequest::Synthesize(s) => {
                push(&mut fields, "verb", Content::Str("synthesize".into()));
                push(&mut fields, "topology", Content::Str(s.topology.clone()));
                push(
                    &mut fields,
                    "collective",
                    Content::Str(s.collective.clone()),
                );
                if s.root != 0 {
                    push(&mut fields, "root", Content::U64(s.root as u64));
                }
                if let Some(max_steps) = s.max_steps {
                    push(&mut fields, "max_steps", Content::U64(max_steps as u64));
                }
                if let Some(max_chunks) = s.max_chunks {
                    push(&mut fields, "max_chunks", Content::U64(max_chunks as u64));
                }
                if let Some(k) = s.k {
                    push(&mut fields, "k", Content::U64(k));
                }
                if let Some(mode) = s.mode {
                    push(&mut fields, "mode", Content::Str(mode_name(mode).into()));
                }
                if let Some(groups) = &s.groups {
                    push(&mut fields, "groups", Content::Str(groups.clone()));
                }
                if let Some(pick) = &s.pick {
                    push(&mut fields, "pick", Content::Str(pick.clone()));
                }
                if s.client != "anonymous" {
                    push(&mut fields, "client", Content::Str(s.client.clone()));
                }
                if let Some(deadline_ms) = s.deadline_ms {
                    push(&mut fields, "deadline_ms", Content::U64(deadline_ms));
                }
            }
        }
        serializer.serialize_content(Content::Map(fields))
    }
}

/// Remove and deserialize an *optional* field (the vendored serde treats
/// missing fields as errors even for `Option`, so optionality is decided
/// here, by presence).
fn optional<'de, T: Deserialize<'de>, E: serde::de::Error>(
    fields: &mut Vec<(String, Content)>,
    name: &str,
) -> Result<Option<T>, E> {
    match fields.iter().position(|(k, _)| k == name) {
        Some(i) => serde::from_content(fields.remove(i).1).map(Some),
        None => Ok(None),
    }
}

impl<'de> Deserialize<'de> for WireRequest {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        let mut fields = serde::content_map::<D::Error>(content)?;
        let verb: String = serde::field(&mut fields, "verb")?;
        let request = match verb.as_str() {
            "metrics" => WireRequest::Metrics,
            "health" => WireRequest::Health,
            "drain" => WireRequest::Drain,
            "shutdown" => WireRequest::Shutdown,
            "synthesize" => {
                let topology: String = serde::field(&mut fields, "topology")?;
                let collective: String = serde::field(&mut fields, "collective")?;
                let root = optional::<usize, D::Error>(&mut fields, "root")?.unwrap_or(0);
                let max_steps = optional::<usize, D::Error>(&mut fields, "max_steps")?;
                let max_chunks = optional::<usize, D::Error>(&mut fields, "max_chunks")?;
                let k = optional::<u64, D::Error>(&mut fields, "k")?;
                let mode = optional::<String, D::Error>(&mut fields, "mode")?
                    .map(|name| parse_mode(&name).map_err(D::Error::custom))
                    .transpose()?;
                let groups = optional::<String, D::Error>(&mut fields, "groups")?;
                let pick = optional::<String, D::Error>(&mut fields, "pick")?;
                if pick.is_some() && groups.is_none() {
                    return Err(D::Error::custom(
                        "`pick` is only meaningful with `groups` (hierarchical requests)",
                    ));
                }
                let client = optional::<String, D::Error>(&mut fields, "client")?
                    .unwrap_or_else(|| "anonymous".to_string());
                let deadline_ms = optional::<u64, D::Error>(&mut fields, "deadline_ms")?;
                WireRequest::Synthesize(WireSynthesize {
                    topology,
                    collective,
                    root,
                    max_steps,
                    max_chunks,
                    k,
                    mode,
                    groups,
                    pick,
                    client,
                    deadline_ms,
                })
            }
            other => {
                return Err(D::Error::custom(format!(
                    "unknown verb `{other}` (expected synthesize, metrics, health, \
                     drain or shutdown)"
                )))
            }
        };
        // Reject leftovers so a misspelled knob fails loudly instead of
        // silently running with defaults (matching the batch manifest's
        // JSON handling).
        if let Some((key, _)) = fields.first() {
            return Err(D::Error::custom(format!(
                "unknown field `{key}` for verb `{verb}`"
            )));
        }
        Ok(request)
    }
}

/// Machine-matchable failure causes on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireErrorKind {
    /// The bounded request queue was full.
    QueueFull,
    /// The client exceeded its in-flight quota.
    ClientQuota,
    /// Admitting the solve would exceed the global solver-memory budget.
    MemoryBudget,
    /// The client's token bucket ran dry; the error payload carries a
    /// `retry_after_ms` hint.
    RateLimited,
    /// The daemon is draining or shutting down.
    Shutdown,
    /// The request line did not parse or referenced unknown specs.
    BadRequest,
    /// Synthesis itself failed (e.g. a disconnected topology, a worker
    /// lost to a contained panic, or a report failing decode-time
    /// verification with no clean re-solve).
    Synthesis,
    /// The request's deadline expired before anything was solved.
    Deadline,
}

impl WireErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            WireErrorKind::QueueFull => "queue_full",
            WireErrorKind::ClientQuota => "client_quota",
            WireErrorKind::MemoryBudget => "memory_budget",
            WireErrorKind::RateLimited => "rate_limited",
            WireErrorKind::Shutdown => "shutdown",
            WireErrorKind::BadRequest => "bad_request",
            WireErrorKind::Synthesis => "synthesis",
            WireErrorKind::Deadline => "deadline",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "queue_full" => WireErrorKind::QueueFull,
            "client_quota" => WireErrorKind::ClientQuota,
            "memory_budget" => WireErrorKind::MemoryBudget,
            "rate_limited" => WireErrorKind::RateLimited,
            "shutdown" => WireErrorKind::Shutdown,
            "bad_request" => WireErrorKind::BadRequest,
            "synthesis" => WireErrorKind::Synthesis,
            "deadline" => WireErrorKind::Deadline,
            _ => return None,
        })
    }
}

/// Per-stage timings of a served request, in microseconds (a JSON-safe
/// flattening of the engine's `ResponseTimings` plus the daemon's queue
/// wait).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTimings {
    /// Time spent queued before a worker picked the job up.
    pub queue_micros: u64,
    /// Cache lookup (hot tier + disk).
    pub lookup_micros: u64,
    /// Encoding work of the warm sweep.
    pub encode_micros: u64,
    /// End-to-end solver time. For hierarchical requests this is the
    /// summed end-to-end time of the stage solves.
    pub solve_micros: u64,
    /// Stitching the stage schedules into one flat algorithm
    /// (hierarchical requests only; zero on flat requests).
    pub stitch_micros: u64,
    /// The composition verifier's replay of the stitched schedule
    /// (hierarchical requests only; zero on flat requests).
    pub verify_micros: u64,
    /// Cache store.
    pub store_micros: u64,
    /// Admission to response.
    pub total_micros: u64,
}

/// One response line, decoded. The report payload is kept as the raw
/// [`Content`] tree it arrived as, so a client can re-serialize it
/// byte-identically (for response-equivalence checks) or decode it into
/// a typed `SynthesisReport` on demand.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// A served `synthesize` request.
    Report {
        /// `"hot"`, `"cache"`, `"solved:sequential"` or
        /// `"solved:parallel"`.
        provenance: String,
        timings: WireTimings,
        /// The `SynthesisReport`, as received.
        report: Content,
    },
    /// A served `metrics` request: the snapshot, as received.
    Metrics(Content),
    /// A served `health` request.
    Health {
        /// `"ready"`, `"draining"` or `"browned-out"`.
        state: String,
        /// Admission has stopped (drain or shutdown in progress).
        draining: bool,
        /// The brownout controller is active.
        browned_out: bool,
    },
    /// Acknowledged `drain` (sent before the daemon stops accepting).
    Drain,
    /// Acknowledged `shutdown`.
    Shutdown,
    /// Any failure.
    Error {
        kind: WireErrorKind,
        error: String,
        /// For `rate_limited`: milliseconds until the client's bucket
        /// refills enough for one request.
        retry_after_ms: Option<u64>,
    },
}

impl WireResponse {
    /// The provenance tag for a response served by the in-process engine.
    pub fn provenance_tag(provenance: sccl_sched::Provenance, from_hot_tier: bool) -> String {
        if from_hot_tier {
            return "hot".to_string();
        }
        match provenance {
            sccl_sched::Provenance::CacheHit => "cache".to_string(),
            sccl_sched::Provenance::Solved(mode) => format!("solved:{}", mode_name(mode)),
        }
    }

    /// Decode the carried report into a typed `SynthesisReport`. Errors
    /// on non-report responses.
    pub fn report(&self) -> Result<sccl_core::pareto::SynthesisReport, String> {
        match self.report_json() {
            Some(json) => {
                serde_json::from_str(&json).map_err(|e| format!("undecodable report payload: {e}"))
            }
            None => Err(format!("not a report response: {self:?}")),
        }
    }

    /// Decode the carried payload of a hierarchical response (provenance
    /// `"hier"`) into a typed composition summary. Errors on non-report
    /// responses and on flat frontier payloads.
    pub fn hier_summary(&self) -> Result<sccl_hier::HierSummary, String> {
        match self.report_json() {
            Some(json) => serde_json::from_str(&json)
                .map_err(|e| format!("undecodable composition summary: {e}")),
            None => Err(format!("not a report response: {self:?}")),
        }
    }

    /// The carried report re-serialized to JSON — byte-identical to the
    /// server's serialization of the same report (both sides render the
    /// same `Content` tree).
    pub fn report_json(&self) -> Option<String> {
        match self {
            WireResponse::Report { report, .. } => {
                Some(serde_json::to_string(report).expect("content serializes"))
            }
            _ => None,
        }
    }
}

impl Serialize for WireResponse {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut fields: Vec<(String, Content)> = Vec::new();
        match self {
            WireResponse::Report {
                provenance,
                timings,
                report,
            } => {
                fields.push(("ok".to_string(), Content::Bool(true)));
                fields.push(("provenance".to_string(), Content::Str(provenance.clone())));
                fields.push(("timings".to_string(), serde::to_content(timings)));
                fields.push(("report".to_string(), report.clone()));
            }
            WireResponse::Metrics(snapshot) => {
                fields.push(("ok".to_string(), Content::Bool(true)));
                fields.push(("metrics".to_string(), snapshot.clone()));
            }
            WireResponse::Health {
                state,
                draining,
                browned_out,
            } => {
                fields.push(("ok".to_string(), Content::Bool(true)));
                fields.push(("health".to_string(), Content::Str(state.clone())));
                fields.push(("draining".to_string(), Content::Bool(*draining)));
                fields.push(("browned_out".to_string(), Content::Bool(*browned_out)));
            }
            WireResponse::Drain => {
                fields.push(("ok".to_string(), Content::Bool(true)));
                fields.push(("draining".to_string(), Content::Bool(true)));
            }
            WireResponse::Shutdown => {
                fields.push(("ok".to_string(), Content::Bool(true)));
                fields.push(("shutdown".to_string(), Content::Bool(true)));
            }
            WireResponse::Error {
                kind,
                error,
                retry_after_ms,
            } => {
                fields.push(("ok".to_string(), Content::Bool(false)));
                fields.push(("kind".to_string(), Content::Str(kind.as_str().to_string())));
                fields.push(("error".to_string(), Content::Str(error.clone())));
                if let Some(retry_after_ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_string(), Content::U64(*retry_after_ms)));
                }
            }
        }
        serializer.serialize_content(Content::Map(fields))
    }
}

impl<'de> Deserialize<'de> for WireResponse {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        let mut fields = serde::content_map::<D::Error>(content)?;
        let ok: bool = serde::field(&mut fields, "ok")?;
        if !ok {
            let kind: String = serde::field(&mut fields, "kind")?;
            let kind = WireErrorKind::parse(&kind)
                .ok_or_else(|| D::Error::custom(format!("unknown error kind `{kind}`")))?;
            let error: String = serde::field(&mut fields, "error")?;
            let retry_after_ms = optional::<u64, D::Error>(&mut fields, "retry_after_ms")?;
            return Ok(WireResponse::Error {
                kind,
                error,
                retry_after_ms,
            });
        }
        if let Some(snapshot) = optional::<Content, D::Error>(&mut fields, "metrics")? {
            return Ok(WireResponse::Metrics(snapshot));
        }
        if let Some(state) = optional::<String, D::Error>(&mut fields, "health")? {
            let draining = optional::<bool, D::Error>(&mut fields, "draining")?.unwrap_or(false);
            let browned_out =
                optional::<bool, D::Error>(&mut fields, "browned_out")?.unwrap_or(false);
            return Ok(WireResponse::Health {
                state,
                draining,
                browned_out,
            });
        }
        if optional::<bool, D::Error>(&mut fields, "draining")?.is_some() {
            return Ok(WireResponse::Drain);
        }
        if optional::<bool, D::Error>(&mut fields, "shutdown")?.is_some() {
            return Ok(WireResponse::Shutdown);
        }
        let provenance: String = serde::field(&mut fields, "provenance")?;
        let timings: WireTimings = serde::field(&mut fields, "timings")?;
        let report = serde::take_field::<D::Error>(&mut fields, "report")?;
        Ok(WireResponse::Report {
            provenance,
            timings,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_round_trips_with_every_knob() {
        let request = WireRequest::Synthesize(WireSynthesize {
            topology: "ring:8".to_string(),
            collective: "broadcast".to_string(),
            root: 3,
            max_steps: Some(6),
            max_chunks: Some(4),
            k: Some(1),
            mode: Some(SolveMode::Parallel),
            groups: Some("uniform:4".to_string()),
            pick: Some("bandwidth".to_string()),
            client: "loadgen-7".to_string(),
            deadline_ms: Some(2_500),
        });
        let line = serde_json::to_string(&request).expect("serialize");
        let back: WireRequest = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, request);
    }

    #[test]
    fn minimal_synthesize_defaults_the_optional_knobs() {
        let back: WireRequest = serde_json::from_str(
            r#"{"verb":"synthesize","topology":"ring:4","collective":"allgather"}"#,
        )
        .expect("minimal request parses");
        assert_eq!(
            back,
            WireRequest::Synthesize(WireSynthesize::new("ring:4", "allgather"))
        );
    }

    #[test]
    fn control_verbs_round_trip() {
        for request in [
            WireRequest::Metrics,
            WireRequest::Health,
            WireRequest::Drain,
            WireRequest::Shutdown,
        ] {
            let line = serde_json::to_string(&request).expect("serialize");
            let back: WireRequest = serde_json::from_str(&line).expect("deserialize");
            assert_eq!(back, request);
        }
    }

    #[test]
    fn health_and_drain_responses_round_trip() {
        let health = WireResponse::Health {
            state: "browned-out".to_string(),
            draining: false,
            browned_out: true,
        };
        let line = serde_json::to_string(&health).expect("serialize");
        assert!(line.contains(r#""health":"browned-out""#));
        let back: WireResponse = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, health);

        let drain = WireResponse::Drain;
        let line = serde_json::to_string(&drain).expect("serialize");
        assert!(line.contains(r#""draining":true"#));
        let back: WireResponse = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, drain);
    }

    #[test]
    fn rate_limited_errors_carry_the_retry_hint() {
        let response = WireResponse::Error {
            kind: WireErrorKind::RateLimited,
            error: "client `loadgen` is rate limited; retry after 125ms".to_string(),
            retry_after_ms: Some(125),
        };
        let line = serde_json::to_string(&response).expect("serialize");
        assert!(line.contains(r#""kind":"rate_limited""#));
        assert!(line.contains(r#""retry_after_ms":125"#));
        let back: WireResponse = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, response);
    }

    #[test]
    fn unknown_verbs_and_fields_are_rejected() {
        assert!(serde_json::from_str::<WireRequest>(r#"{"verb":"frobnicate"}"#).is_err());
        assert!(serde_json::from_str::<WireRequest>(
            r#"{"verb":"synthesize","topology":"ring:4","collective":"allgather","Steps":6}"#
        )
        .is_err());
        assert!(serde_json::from_str::<WireRequest>(r#"{"verb":"metrics","extra":1}"#).is_err());
    }

    #[test]
    fn hierarchical_fields_round_trip_and_pick_requires_groups() {
        let request = WireRequest::Synthesize(
            WireSynthesize::new("rings:4x4", "allgather").with_groups("auto"),
        );
        let line = serde_json::to_string(&request).expect("serialize");
        assert!(line.contains(r#""groups":"auto""#));
        let back: WireRequest = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, request);
        assert!(serde_json::from_str::<WireRequest>(
            r#"{"verb":"synthesize","topology":"ring:4","collective":"allgather","pick":"latency"}"#
        )
        .is_err());
    }

    #[test]
    fn bad_mode_is_rejected() {
        assert!(serde_json::from_str::<WireRequest>(
            r#"{"verb":"synthesize","topology":"ring:4","collective":"allgather","mode":"warp"}"#
        )
        .is_err());
    }

    #[test]
    fn spec_parsing_resolves_topology_and_collective() {
        let s = WireSynthesize::new("ring:4", "broadcast");
        assert_eq!(s.parse_topology().expect("spec").num_nodes(), 4);
        assert_eq!(
            s.parse_collective().expect("collective"),
            Collective::Broadcast { root: 0 }
        );
        assert!(WireSynthesize::new("möbius:4", "allgather")
            .parse_topology()
            .is_err());
        assert!(WireSynthesize::new("ring:4", "telepathy")
            .parse_collective()
            .is_err());
    }

    #[test]
    fn error_responses_round_trip() {
        let response = WireResponse::Error {
            kind: WireErrorKind::QueueFull,
            error: "queue at capacity 4".to_string(),
            retry_after_ms: None,
        };
        let line = serde_json::to_string(&response).expect("serialize");
        assert!(line.contains(r#""ok":false"#));
        assert!(line.contains(r#""kind":"queue_full""#));
        let back: WireResponse = serde_json::from_str(&line).expect("deserialize");
        assert_eq!(back, response);
    }

    #[test]
    fn report_responses_round_trip_with_byte_identical_payload() {
        use sccl_core::pareto::{pareto_synthesize, SynthesisConfig};
        let config = SynthesisConfig {
            max_steps: 4,
            max_chunks: 2,
            ..Default::default()
        };
        let report = pareto_synthesize(
            &sccl_topology::builders::ring(4, 1),
            Collective::Allgather,
            &config,
        )
        .expect("tiny synthesis");
        let direct_json = serde_json::to_string(&report).expect("report serializes");
        let response = WireResponse::Report {
            provenance: "solved:sequential".to_string(),
            timings: WireTimings::default(),
            report: serde::to_content(&report),
        };
        let line = serde_json::to_string(&response).expect("serialize");
        let back: WireResponse = serde_json::from_str(&line).expect("deserialize");
        // The payload survives the wire byte-for-byte…
        assert_eq!(back.report_json().expect("report"), direct_json);
        // …and decodes to the same typed report.
        assert_eq!(back.report().expect("typed report"), report);
    }
}
