//! Chaos suite: inject faults into a live daemon through
//! `sccl_core::failpoint` and assert the containment contract — every
//! injected failure yields a *typed* wire error (or a degraded report),
//! the daemon keeps serving subsequent requests byte-identically, and
//! quarantined state heals by re-solving.
//!
//! The failpoint registry is process-global, so every test that arms a
//! site holds [`CHAOS`] for its whole body (and resets the registry on
//! drop, panic included) — the tests serialize instead of tripping each
//! other's faults.

use sccl_core::failpoint::{self, FailAction};
use sccl_serve::{
    Daemon, RetryPolicy, ServeClient, ServeConfig, ServeError, Served, Server, WireErrorKind,
    WireResponse, WireSynthesize,
};
use serde::Content;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static CHAOS: Mutex<()> = Mutex::new(());

/// Hold the chaos lock and guarantee a clean failpoint registry on both
/// entry and exit (even when the test body panics).
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ChaosGuard {
    fn lock() -> ChaosGuard {
        let guard = CHAOS
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        failpoint::reset();
        ChaosGuard(guard)
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::reset();
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sccl-chaos-{tag}-{}.sock", std::process::id()))
}

fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sccl-chaos-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_defaults() -> sccl_core::pareto::SynthesisConfig {
    sccl_core::pareto::SynthesisConfig {
        max_steps: 6,
        max_chunks: 2,
        ..Default::default()
    }
}

fn engine_with_cache(dir: &PathBuf) -> sccl_sched::Engine {
    sccl_sched::Engine::builder()
        .sequential()
        .synthesis_defaults(quick_defaults())
        .cache_dir(dir)
        .build()
        .expect("engine")
}

fn report_json(response: &WireResponse) -> String {
    match response {
        WireResponse::Report { .. } => response.report_json().expect("report json"),
        other => panic!("expected a report, got {other:?}"),
    }
}

fn provenance(response: &WireResponse) -> &str {
    match response {
        WireResponse::Report { provenance, .. } => provenance,
        other => panic!("expected a report, got {other:?}"),
    }
}

fn section_field(snapshot: &Content, section: &str, field: &str) -> u64 {
    let Content::Map(top) = snapshot else {
        panic!("metrics snapshot is not a map");
    };
    let fields = &top
        .iter()
        .find(|(k, _)| k == section)
        .unwrap_or_else(|| panic!("snapshot has a {section} section"))
        .1;
    let Content::Map(fields) = fields else {
        panic!("{section} is not a map");
    };
    match fields.iter().find(|(k, _)| k == field) {
        Some((_, Content::U64(v))) => *v,
        Some((_, Content::I64(v))) => *v as u64,
        other => panic!("{section}.{field} missing or non-numeric: {other:?}"),
    }
}

fn fault_field(snapshot: &Content, field: &str) -> u64 {
    section_field(snapshot, "faults", field)
}

/// The canonical hierarchical chaos problem: 2 groups of 4 over a
/// bridged outer link, composed with auto-detected groups.
fn hier_synthesize() -> WireSynthesize {
    WireSynthesize::new("rings:2x4", "allgather").with_groups("auto")
}

#[test]
fn a_solver_panic_is_contained_and_the_daemon_keeps_serving() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("panic");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("panic"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // A clean solve first, as the byte-identity baseline.
    let baseline = client
        .synthesize(WireSynthesize::new("ring:4", "allgather"))
        .expect("baseline roundtrip");
    let baseline_json = report_json(&baseline);

    // Inject one panic into the next solver run (a different problem, so
    // it cannot be answered from a tier).
    failpoint::arm_times("pool.solve", FailAction::Panic, 1);
    let response = client
        .synthesize(WireSynthesize::new("ring:5", "allgather"))
        .expect("the connection survives the worker panic");
    match &response {
        WireResponse::Error { kind, error, .. } => {
            assert_eq!(*kind, WireErrorKind::Synthesis, "was: {response:?}");
            assert!(error.contains("worker"), "names the lost worker: {error}");
        }
        other => panic!("a panicked solve must surface a typed error, got {other:?}"),
    }

    // The same problem solves cleanly now that the failpoint is spent —
    // the panicked attempt poisoned nothing.
    let healed = client
        .synthesize(WireSynthesize::new("ring:5", "allgather"))
        .expect("roundtrip");
    assert!(provenance(&healed).starts_with("solved"), "was: {healed:?}");

    // And the baseline problem is still served byte-identically.
    let repeat = client
        .synthesize(WireSynthesize::new("ring:4", "allgather"))
        .expect("roundtrip");
    assert_eq!(report_json(&repeat), baseline_json);

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(fault_field(&snapshot, "panics_caught"), 1);
    assert_eq!(
        fault_field(&snapshot, "pools_quarantined"),
        1,
        "the warm pool the panic unwound through must be dropped, not checked in"
    );
    assert_eq!(fault_field(&snapshot, "verify_failures"), 0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_cache_read_quarantines_resolves_and_recovers() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("corrupt");
    let request = || WireSynthesize::new("ring:4", "allgather");

    // Populate the on-disk cache through a first daemon, then retire it.
    let clean = {
        let server =
            Server::start(engine_with_cache(&dir), ServeConfig::default()).expect("server");
        let daemon = Daemon::bind(socket_path("corrupt-seed"), server).expect("bind");
        let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");
        let first = client.synthesize(request()).expect("solve roundtrip");
        assert!(provenance(&first).starts_with("solved"), "was: {first:?}");
        let report = first.report().expect("typed report");
        daemon.shutdown();
        report
    };

    // A fresh daemon on the same cache dir: its first lookup is a real
    // disk read (no hot tier, no warm memo), which the failpoint turns
    // into a corrupt entry.
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            hot_capacity: 0,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("corrupt"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    failpoint::arm_times("cache.read", FailAction::Trigger, 1);
    let healed = client.synthesize(request()).expect("roundtrip");
    assert!(
        provenance(&healed).starts_with("solved"),
        "a corrupt hit must fall through to a re-solve, was: {healed:?}"
    );
    // The re-solved frontier matches the original algorithm-for-algorithm
    // (per-entry solver wall-clock differs between independent runs, so
    // byte identity is checked on the schedules, not the whole report).
    let healed_report = healed.report().expect("typed report");
    assert_eq!(healed_report.entries.len(), clean.entries.len());
    for (fresh, original) in healed_report.entries.iter().zip(&clean.entries) {
        assert_eq!(fresh.chunks, original.chunks);
        assert_eq!(fresh.steps, original.steps);
        assert_eq!(fresh.rounds, original.rounds);
        assert_eq!(fresh.algorithm, original.algorithm);
    }

    // The poisoned entry moved to quarantine/ with a reason sidecar...
    let quarantine = dir.join("quarantine");
    let quarantined: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir exists")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(quarantined.len(), 2, "entry + reason: {quarantined:?}");
    assert!(quarantined
        .iter()
        .any(|p| p.extension() == Some("json".as_ref())));
    assert!(quarantined
        .iter()
        .any(|p| p.extension() == Some("reason".as_ref())));

    // ...and the re-solve re-stored a clean entry: hits resume.
    let recovered = client.synthesize(request()).expect("roundtrip");
    assert_eq!(provenance(&recovered), "cache", "hit rate must recover");

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(fault_field(&snapshot, "cache_quarantined"), 1);
    assert_eq!(fault_field(&snapshot, "verify_failures"), 0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_yields_a_typed_or_degraded_answer() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("deadline");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("deadline"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // The first solver run stalls well past the deadline; by the time it
    // wakes the watchdog has raised the cooperative flag, so the sweep
    // winds down with whatever it had (here: nothing).
    failpoint::arm_times(
        "pool.solve",
        FailAction::Sleep(Duration::from_millis(400)),
        1,
    );
    let response = client
        .synthesize(WireSynthesize::new("ring:4", "allgather").with_deadline_ms(60))
        .expect("the connection survives the expiry");
    match &response {
        WireResponse::Error { kind, .. } => {
            assert_eq!(*kind, WireErrorKind::Deadline, "was: {response:?}");
        }
        WireResponse::Report { provenance, .. } => {
            // A partial frontier beat the cut: acceptable, but it must be
            // marked degraded.
            assert!(
                provenance.ends_with(":degraded"),
                "an expired deadline cannot serve an unmarked report: {response:?}"
            );
        }
        other => panic!("unexpected response {other:?}"),
    }

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(
        fault_field(&snapshot, "deadline_expired") + fault_field(&snapshot, "deadline_degraded"),
        1,
        "exactly one deadline outcome is recorded: {snapshot:?}"
    );

    // Degraded results are never cached: the same request without a
    // deadline now solves fully and is served cleanly.
    let clean = client
        .synthesize(WireSynthesize::new("ring:4", "allgather"))
        .expect("roundtrip");
    assert!(
        provenance(&clean).starts_with("solved"),
        "nothing usable may have been cached by the degraded run: {clean:?}"
    );
    // A generous deadline is simply met.
    let met = client
        .synthesize(WireSynthesize::new("ring:4", "allgather").with_deadline_ms(60_000))
        .expect("roundtrip");
    assert_eq!(provenance(&met), "hot");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_process_tickets_surface_worker_loss_and_bound_their_wait() {
    let _chaos = ChaosGuard::lock();
    let engine = sccl_sched::Engine::builder()
        .sequential()
        .synthesis_defaults(quick_defaults())
        .build()
        .expect("engine");
    let server = Server::start(
        engine,
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");

    // A ticket whose worker panics resolves to WorkerLost instead of
    // hanging its waiter forever.
    failpoint::arm_times("pool.solve", FailAction::Panic, 1);
    let ticket = server
        .submit(
            sccl_topology::builders::ring(4, 1),
            sccl_collectives::Collective::Allgather,
            quick_defaults(),
            None,
            "chaos",
        )
        .expect("admitted");
    match ticket.wait() {
        Err(ServeError::WorkerLost) => {}
        other => panic!("expected WorkerLost, got {other:?}"),
    }

    // wait_timeout bounds the wait while the solve stalls, then the same
    // ticket still delivers the (clean) outcome.
    failpoint::arm_times(
        "pool.solve",
        FailAction::Sleep(Duration::from_millis(300)),
        1,
    );
    let ticket = server
        .submit(
            sccl_topology::builders::ring(5, 1),
            sccl_collectives::Collective::Allgather,
            quick_defaults(),
            None,
            "chaos",
        )
        .expect("admitted");
    assert!(
        ticket.wait_timeout(Duration::from_millis(20)).is_none(),
        "a stalled solve must time the bounded wait out"
    );
    let outcome: Served = ticket.wait().expect("eventually served");
    assert!(!outcome.degraded);
    server.shutdown();
}

#[test]
fn a_dropped_connection_is_survived_by_reconnect_and_replay() {
    let _chaos = ChaosGuard::lock();
    let server = Server::start(
        sccl_sched::Engine::builder()
            .sequential()
            .synthesis_defaults(quick_defaults())
            .build()
            .expect("engine"),
        ServeConfig::default(),
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("drop"), server).expect("bind");

    // Without retries the injected drop surfaces as an I/O error.
    failpoint::arm_times("conn.write", FailAction::Trigger, 1);
    let mut brittle = ServeClient::connect(daemon.socket_path())
        .expect("connect")
        .with_retry(RetryPolicy::none());
    brittle
        .metrics()
        .expect_err("the daemon dropped the connection mid-response");

    // With the default policy the client reconnects under backoff and
    // replays; the daemon (whose failpoint fires once more) answers the
    // replay on the fresh connection.
    failpoint::arm_times("conn.write", FailAction::Trigger, 1);
    let mut resilient = ServeClient::connect(daemon.socket_path()).expect("connect");
    let response = resilient.metrics().expect("reconnect and replay");
    assert!(
        matches!(response, WireResponse::Metrics(_)),
        "was: {response:?}"
    );
    daemon.shutdown();
}

#[test]
fn malformed_request_lines_get_typed_errors_without_killing_the_connection() {
    // No failpoints: this is the daemon's own input hardening.
    let server = Server::start(
        sccl_sched::Engine::builder()
            .sequential()
            .synthesis_defaults(quick_defaults())
            .build()
            .expect("engine"),
        ServeConfig::default(),
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("malformed"), server.clone()).expect("bind");

    let stream = std::os::unix::net::UnixStream::connect(daemon.socket_path()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        assert!(!response.is_empty(), "connection died after `{line}`");
        response
    };

    for garbage in [
        "this is not json",
        "{\"verb\":\"frobnicate\"}",
        "{\"verb\":\"synthesize\"}",
        "{\"verb\":\"synthesize\",\"topology\":\"ring:4\",\"collective\":\"allgather\",\"bogus\":1}",
        "[1,2,3]",
    ] {
        let response = roundtrip(garbage);
        assert!(
            response.contains("\"kind\":\"bad_request\""),
            "`{garbage}` must get a typed bad_request, got: {response}"
        );
    }

    // The same connection still serves a well-formed request afterwards.
    let response =
        roundtrip("{\"verb\":\"synthesize\",\"topology\":\"ring:4\",\"collective\":\"allgather\"}");
    assert!(
        response.contains("\"ok\":true"),
        "the connection must still serve real work: {response}"
    );
    assert_eq!(server.snapshot().requests.bad, 5);
    daemon.shutdown();
}

#[test]
fn a_hier_stage_panic_is_contained_and_the_daemon_keeps_composing() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("hier-panic");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("hier-panic"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // One panic inside a stage solve: the composition fails typed, the
    // connection and the daemon survive.
    failpoint::arm_times("hier.stage", FailAction::Panic, 1);
    let response = client
        .synthesize(hier_synthesize())
        .expect("the connection survives the stage panic");
    match &response {
        WireResponse::Error { kind, error, .. } => {
            assert_eq!(*kind, WireErrorKind::Synthesis, "was: {response:?}");
            assert!(
                error.contains("contained"),
                "names the containment: {error}"
            );
        }
        other => panic!("a panicked stage solve must surface a typed error, got {other:?}"),
    }

    // The failpoint is spent: the same composition now succeeds, fully
    // verified, with nothing poisoned by the unwound stage.
    let healed = client.synthesize(hier_synthesize()).expect("roundtrip");
    assert_eq!(provenance(&healed), "hier");
    let summary = healed.hier_summary().expect("typed summary");
    assert_eq!(summary.num_nodes, 8);
    assert_eq!(summary.degraded_stages, 0);

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(fault_field(&snapshot, "panics_caught"), 1);
    assert_eq!(section_field(&snapshot, "hier", "requests"), 2);
    assert_eq!(section_field(&snapshot, "hier", "verify_failures"), 0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_sabotaged_stitch_is_rejected_by_the_composition_verifier() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("hier-stitch");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("hier-stitch"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // The stitch failpoint drops one send from the composed schedule; the
    // end-to-end verifier must refuse to serve the unsound algorithm.
    failpoint::arm_times("hier.stitch", FailAction::Trigger, 1);
    let response = client
        .synthesize(hier_synthesize())
        .expect("the connection survives the bad stitch");
    match &response {
        WireResponse::Error { kind, error, .. } => {
            assert_eq!(*kind, WireErrorKind::Synthesis, "was: {response:?}");
            assert!(
                error.contains("composition"),
                "names the rejected composition: {error}"
            );
        }
        other => panic!("an unsound stitch must never be served, got {other:?}"),
    }

    // The stage solves that fed the sabotaged stitch are themselves sound
    // and cached; a retry re-stitches cleanly.
    let healed = client.synthesize(hier_synthesize()).expect("roundtrip");
    assert_eq!(provenance(&healed), "hier");

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(fault_field(&snapshot, "verify_failures"), 1);
    assert_eq!(section_field(&snapshot, "hier", "verify_failures"), 1);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_hier_deadline_yields_a_typed_or_degraded_composition() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("hier-deadline");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("hier-deadline"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // The first stage solve stalls well past the whole-composition
    // deadline; the planner's remaining-budget ladder must answer typed.
    failpoint::arm_times(
        "hier.stage",
        FailAction::Sleep(Duration::from_millis(400)),
        1,
    );
    let response = client
        .synthesize(hier_synthesize().with_deadline_ms(60))
        .expect("the connection survives the expiry");
    match &response {
        WireResponse::Error { kind, .. } => {
            assert_eq!(*kind, WireErrorKind::Deadline, "was: {response:?}");
        }
        WireResponse::Report { provenance, .. } => {
            // Partial stage frontiers beat the cut: acceptable, but the
            // composition must carry the degraded mark.
            assert!(
                provenance == "hier:degraded",
                "an expired deadline cannot serve an unmarked composition: {response:?}"
            );
        }
        other => panic!("unexpected response {other:?}"),
    }

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb");
    };
    assert_eq!(
        fault_field(&snapshot, "deadline_expired") + fault_field(&snapshot, "deadline_degraded"),
        1,
        "exactly one deadline outcome is recorded: {snapshot:?}"
    );

    // A generous deadline simply composes, undegraded.
    let met = client
        .synthesize(hier_synthesize().with_deadline_ms(60_000))
        .expect("roundtrip");
    assert_eq!(provenance(&met), "hier");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dropped_connection_mid_hier_response_is_survived_by_reconnect_and_replay() {
    let _chaos = ChaosGuard::lock();
    let dir = cache_dir("hier-drop");
    let server = Server::start(
        engine_with_cache(&dir),
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("hier-drop"), server).expect("bind");

    let baseline = ServeClient::connect(daemon.socket_path())
        .expect("connect")
        .synthesize(hier_synthesize())
        .expect("baseline roundtrip");
    assert_eq!(provenance(&baseline), "hier");
    let baseline_summary = baseline.hier_summary().expect("typed summary");

    // The daemon drops the connection mid-response; the client reconnects
    // under backoff and replays the request on the fresh connection.
    failpoint::arm_times("conn.write", FailAction::Trigger, 1);
    let mut resilient = ServeClient::connect(daemon.socket_path()).expect("connect");
    let replayed = resilient
        .synthesize(hier_synthesize())
        .expect("reconnect and replay");
    assert_eq!(provenance(&replayed), "hier");
    let replay_summary = replayed.hier_summary().expect("typed summary");
    // Wall-clock differs between independent runs, so identity is checked
    // on the composition itself: stage for stage, cost for cost.
    assert_eq!(replay_summary.stages, baseline_summary.stages);
    assert_eq!(replay_summary.composed_cost, baseline_summary.composed_cost);
    assert_eq!(replay_summary.total_sends, baseline_summary.total_sends);
    assert_eq!(replay_summary.degraded_stages, 0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hier_requests_share_the_admission_envelope() {
    let _chaos = ChaosGuard::lock();
    let server = Server::start(
        sccl_sched::Engine::builder()
            .sequential()
            .synthesis_defaults(quick_defaults())
            .build()
            .expect("engine"),
        ServeConfig {
            workers: 1,
            per_client_inflight: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let hier_request = || {
        sccl_hier::HierRequest::new(
            &sccl_topology::builders::ring_of_rings(2, 4, 2, 1),
            sccl_collectives::Collective::Allgather,
        )
        .with_config(quick_defaults())
    };

    // Hold the lone worker in a stalled flat solve; the same client's
    // hierarchical request must bounce off its in-flight quota exactly
    // like a second flat request would.
    failpoint::arm_times(
        "pool.solve",
        FailAction::Sleep(Duration::from_millis(300)),
        1,
    );
    let held = server
        .submit(
            sccl_topology::builders::ring(5, 1),
            sccl_collectives::Collective::Allgather,
            quick_defaults(),
            None,
            "greedy",
        )
        .expect("admitted");
    match server.submit_hier(hier_request(), "greedy", None) {
        Err(ServeError::ClientQuota { .. }) => {}
        other => panic!("expected ClientQuota, got {other:?}"),
    }
    held.wait().expect("the held flat job still completes");

    // Draining rejects new hierarchical work but never drops an already
    // admitted composition: its ticket still resolves to a verified
    // answer.
    let ticket = server
        .submit_hier(hier_request(), "drainer", None)
        .expect("admitted before the drain");
    server.begin_drain();
    match server.submit_hier(hier_request(), "drainer", None) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("a draining daemon must reject new hier work, got {other:?}"),
    }
    let served = ticket
        .wait()
        .expect("the drained daemon finishes in-flight compositions");
    assert!(!served.degraded);
    assert_eq!(served.summary.degraded_stages, 0);
    server.shutdown();
}
