//! Crash-recovery and graceful-drain tests over a real Unix socket: a
//! journaled request left behind by a "crashed" daemon is replayed at
//! startup, the `health` verb reports liveness, and the `drain` verb
//! stops admission and exits with every in-flight job answered.

use sccl_serve::{
    Daemon, ServeClient, ServeConfig, Server, WireRequest, WireResponse, WireSynthesize,
};
use serde::Content;
use std::path::PathBuf;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sccl-serve-recovery-{tag}-{}.sock",
        std::process::id()
    ))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sccl-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_defaults() -> sccl_core::pareto::SynthesisConfig {
    sccl_core::pareto::SynthesisConfig {
        max_steps: 6,
        max_chunks: 4,
        ..Default::default()
    }
}

fn metrics_field(snapshot: &Content, path: &[&str]) -> f64 {
    let mut current = snapshot;
    for key in path {
        let Content::Map(fields) = current else {
            panic!("expected a map at {key}, got {current:?}");
        };
        current = &fields
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("metrics missing field {key}"))
            .1;
    }
    match current {
        Content::U64(v) => *v as f64,
        Content::I64(v) => *v as f64,
        Content::F64(v) => *v,
        other => panic!("expected a number at {path:?}, got {other:?}"),
    }
}

#[test]
fn a_journaled_request_is_replayed_before_the_daemon_takes_new_work() {
    let journal_dir = tmp_dir("journal");
    let cache_dir = tmp_dir("cache");

    // A "crashed" daemon left one admitted request in its journal: the
    // write-ahead record survived, the response never happened.
    {
        let journal = sccl_sched::Journal::open(&journal_dir).expect("journal");
        let line = serde_json::to_string(&WireRequest::Synthesize(
            WireSynthesize::new("ring:4", "allgather").with_client("lost"),
        ))
        .expect("request line");
        journal.append_queue_record(&line).expect("append");
        assert_eq!(journal.queue_len(), 1);
    }

    let engine = sccl_sched::Engine::builder()
        .sequential()
        .synthesis_defaults(quick_defaults())
        .journal_dir(&journal_dir)
        .cache_dir(&cache_dir)
        .build()
        .expect("engine");
    let server = Server::start(
        engine,
        ServeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("replay"), server).expect("bind");

    // The accept thread replays before accepting, so this roundtrip is
    // ordered after the recovery solve: the "retrying client" hits the
    // hot tier instead of waiting through a second cold solve.
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");
    let response = client
        .synthesize(WireSynthesize::new("ring:4", "allgather").with_client("retry"))
        .expect("roundtrip");
    match &response {
        WireResponse::Report { provenance, .. } => assert_eq!(
            provenance, "hot",
            "the replayed solve must already be in the hot tier"
        ),
        other => panic!("expected a report, got {other:?}"),
    }

    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb must answer with a snapshot");
    };
    assert_eq!(
        metrics_field(&snapshot, &["daemon", "journal_replayed"]),
        1.0
    );
    assert!(
        metrics_field(&snapshot, &["daemon", "checkpoints_written"]) > 0.0,
        "the sequential sweep must persist checkpoints through the journal"
    );
    assert!(metrics_field(&snapshot, &["daemon", "uptime_ms"]) >= 0.0);
    daemon.shutdown();

    // The replayed record was consumed: nothing left to replay twice.
    let journal = sccl_sched::Journal::open(&journal_dir).expect("reopen");
    assert_eq!(journal.queue_len(), 0);
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn the_drain_verb_reports_health_then_exits_cleanly() {
    let engine = sccl_sched::Engine::builder()
        .sequential()
        .synthesis_defaults(quick_defaults())
        .build()
        .expect("engine");
    let server = Server::start(engine, ServeConfig::default()).expect("server");
    let daemon = Daemon::bind(socket_path("drain"), server).expect("bind");
    let path = daemon.socket_path().to_path_buf();
    let mut client = ServeClient::connect(&path).expect("connect");

    // Before the drain: ready.
    let health = client.health().expect("health");
    match &health {
        WireResponse::Health {
            state,
            draining,
            browned_out,
        } => {
            assert_eq!(state, "ready");
            assert!(!draining && !browned_out);
        }
        other => panic!("expected health, got {other:?}"),
    }

    // Serve one request so there is real state to drain behind.
    let served = client
        .synthesize(WireSynthesize::new("ring:4", "allgather").with_client("d"))
        .expect("roundtrip");
    assert!(matches!(served, WireResponse::Report { .. }));

    // Drain is acknowledged before the daemon stops accepting...
    let ack = client.drain().expect("drain");
    assert!(matches!(ack, WireResponse::Drain), "was: {ack:?}");

    // ...and the daemon then exits cleanly, removing its socket.
    daemon.wait();
    assert!(!path.exists(), "socket file must be removed after drain");
}
