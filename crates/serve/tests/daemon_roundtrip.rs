//! End-to-end daemon tests over a real Unix socket: concurrent clients,
//! wire-level error surfaces, the metrics verb and shutdown draining.

use sccl_serve::{
    Daemon, ServeClient, ServeConfig, Server, WireErrorKind, WireResponse, WireSynthesize,
};
use serde::Content;
use std::path::PathBuf;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sccl-serve-test-{tag}-{}.sock", std::process::id()))
}

fn quick_engine() -> sccl_sched::Engine {
    sccl_sched::Engine::builder()
        .sequential()
        .synthesis_defaults(sccl_core::pareto::SynthesisConfig {
            max_steps: 6,
            max_chunks: 4,
            ..Default::default()
        })
        .build()
        .expect("engine")
}

fn metrics_field(snapshot: &Content, path: &[&str]) -> f64 {
    let mut current = snapshot;
    for key in path {
        let Content::Map(fields) = current else {
            panic!("expected a map at {key}, got {current:?}");
        };
        current = &fields
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("metrics missing field {key}"))
            .1;
    }
    match current {
        Content::U64(v) => *v as f64,
        Content::I64(v) => *v as f64,
        Content::F64(v) => *v,
        other => panic!("expected a number at {path:?}, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_share_the_daemon_and_its_tiers() {
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            workers: 2,
            per_client_inflight: 8,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("many"), server).expect("bind");
    let path = daemon.socket_path().to_path_buf();

    // Warm the problem through the wire first so the 8-way burst below
    // hits the hot tier deterministically (a purely concurrent cold
    // start could legitimately solve the problem more than once).
    let warmup = ServeClient::connect(&path)
        .expect("connect")
        .synthesize(WireSynthesize::new("ring:4", "allgather").with_client("warmup"))
        .expect("warmup roundtrip");
    assert!(
        matches!(&warmup, WireResponse::Report { provenance, .. } if provenance.starts_with("solved")),
        "was: {warmup:?}"
    );

    // 8 clients, each synthesizing the same small problem — all served
    // from the hot tier, byte-identically.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&path).expect("connect");
                let response = client
                    .synthesize(
                        WireSynthesize::new("ring:4", "allgather").with_client(format!("c{i}")),
                    )
                    .expect("roundtrip");
                match response {
                    WireResponse::Report {
                        report, provenance, ..
                    } => {
                        assert_eq!(provenance, "hot", "client {i} missed the warm tier");
                        serde_json::to_string(&report).expect("report json")
                    }
                    other => panic!("client {i} got {other:?}"),
                }
            })
        })
        .collect();
    let reports: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    // Every client saw the same frontier bytes (solved once, then served
    // from the hot tier — tier answers share the stored report verbatim).
    for report in &reports[1..] {
        assert_eq!(report, &reports[0]);
    }

    let mut client = ServeClient::connect(&path).expect("connect");
    let WireResponse::Metrics(snapshot) = client.metrics().expect("metrics") else {
        panic!("metrics verb must answer with a snapshot");
    };
    assert_eq!(metrics_field(&snapshot, &["requests", "synthesize"]), 9.0);
    assert_eq!(metrics_field(&snapshot, &["cache", "solved"]), 1.0);
    assert_eq!(metrics_field(&snapshot, &["cache", "hot_hits"]), 8.0);
    assert!(metrics_field(&snapshot, &["cache", "hit_rate"]) > 0.8);
    assert!(metrics_field(&snapshot, &["latency_micros", "solve", "p99_micros"]) > 0.0);

    let WireResponse::Shutdown = client.shutdown().expect("shutdown") else {
        panic!("shutdown must be acknowledged");
    };
    daemon.wait();
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

#[test]
fn wire_errors_are_typed() {
    let server = Server::start(quick_engine(), ServeConfig::default()).expect("server");
    let daemon = Daemon::bind(socket_path("errors"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    // Unknown topology spec.
    let response = client
        .synthesize(WireSynthesize::new("pretzel:9", "allgather"))
        .expect("roundtrip");
    assert!(
        matches!(
            &response,
            WireResponse::Error {
                kind: WireErrorKind::BadRequest,
                ..
            }
        ),
        "was: {response:?}"
    );
    // Degenerate size: the chain builder asserts on n < 2; the daemon
    // must answer with a spec error, not kill the connection.
    let response = client
        .synthesize(WireSynthesize::new("chain:1", "allgather"))
        .expect("roundtrip");
    assert!(
        matches!(
            &response,
            WireResponse::Error {
                kind: WireErrorKind::BadRequest,
                ..
            }
        ),
        "was: {response:?}"
    );
    // Synthesis failure: hypercube:0 builds a 1-node topology, which the
    // engine rejects with TooFewNodes.
    let response = client
        .synthesize(WireSynthesize::new("hypercube:0", "allgather"))
        .expect("roundtrip");
    assert!(
        matches!(
            &response,
            WireResponse::Error {
                kind: WireErrorKind::Synthesis,
                ..
            }
        ),
        "was: {response:?}"
    );
    daemon.shutdown();
}

#[test]
fn hierarchical_requests_compose_through_the_wire() {
    let server = Server::start(quick_engine(), ServeConfig::default()).expect("server");
    let daemon = Daemon::bind(socket_path("hier"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");

    let response = client
        .synthesize(WireSynthesize::new("rings:4x4", "allgather").with_groups("auto"))
        .expect("roundtrip");
    match &response {
        WireResponse::Report {
            provenance,
            timings,
            ..
        } => {
            assert_eq!(provenance, "hier");
            // The wire carries the real per-phase breakdown, not zeros:
            // stage solving and end-to-end verification both take time.
            assert!(timings.solve_micros > 0, "was: {timings:?}");
            assert!(timings.verify_micros > 0, "was: {timings:?}");
            assert!(
                timings.total_micros >= timings.solve_micros,
                "was: {timings:?}"
            );
        }
        other => panic!("expected a composition report, got {other:?}"),
    }
    let summary = response.hier_summary().expect("typed summary");
    assert_eq!(summary.num_nodes, 16);
    assert_eq!(summary.num_groups, 4);
    assert_eq!(summary.stages.len(), 3);
    assert_eq!(summary.composed_cost.chunks, 1);

    // A bad group spec is a typed bad_request, not a dead connection.
    let response = client
        .synthesize(WireSynthesize::new("rings:4x4", "allgather").with_groups("uniform:"))
        .expect("roundtrip");
    assert!(
        matches!(
            &response,
            WireResponse::Error {
                kind: WireErrorKind::BadRequest,
                ..
            }
        ),
        "was: {response:?}"
    );
    // A collective without a composition rule is a client error — no
    // retry of the same request can ever succeed.
    let response = client
        .synthesize(WireSynthesize::new("rings:4x4", "alltoall").with_groups("auto"))
        .expect("roundtrip");
    assert!(
        matches!(
            &response,
            WireResponse::Error {
                kind: WireErrorKind::BadRequest,
                ..
            }
        ),
        "was: {response:?}"
    );
    daemon.shutdown();
}

#[test]
fn hier_requests_are_rate_limited_with_a_retry_hint() {
    // A one-token bucket with a near-zero refill: the first composition
    // is served, the immediate second one bounces with a retry hint —
    // hierarchical requests sit behind the same token buckets as flat
    // ones.
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            rate_limit_per_sec: 0.01,
            rate_limit_burst: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("hier-rate"), server).expect("bind");
    let mut client = ServeClient::connect(daemon.socket_path()).expect("connect");
    let request = || {
        WireSynthesize::new("rings:4x4", "allgather")
            .with_groups("auto")
            .with_client("bursty")
    };

    let first = client.synthesize(request()).expect("roundtrip");
    assert!(
        matches!(&first, WireResponse::Report { provenance, .. } if provenance == "hier"),
        "was: {first:?}"
    );
    let second = client.synthesize(request()).expect("roundtrip");
    match &second {
        WireResponse::Error {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(*kind, WireErrorKind::RateLimited, "was: {second:?}");
            assert!(
                retry_after_ms.is_some_and(|ms| ms > 0),
                "the rejection must carry a retry hint: {second:?}"
            );
        }
        other => panic!("the second burst request must bounce off the bucket, got {other:?}"),
    }
    daemon.shutdown();
}

#[test]
fn admission_rejections_reach_the_wire() {
    // Tiny budget and quota: a burst of distinct problems from one client
    // must produce typed rejections, not unbounded queueing.
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            workers: 1,
            per_client_inflight: 1,
            ..Default::default()
        },
    )
    .expect("server");
    let daemon = Daemon::bind(socket_path("reject"), server).expect("bind");
    let path = daemon.socket_path().to_path_buf();

    // Two concurrent connections sharing one client identity; with a
    // quota of 1 and a single worker, at least one of the two big
    // requests must bounce with client_quota... unless the first has
    // already finished. Use slow (chunks 8) problems to keep the overlap.
    let burst: Vec<_> = ["ring:5", "ring:6"]
        .into_iter()
        .map(|topo| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&path).expect("connect");
                client
                    .synthesize(
                        WireSynthesize::new(topo, "allgather")
                            .with_caps(8, 8)
                            .with_client("greedy"),
                    )
                    .expect("roundtrip")
            })
        })
        .collect();
    let outcomes: Vec<WireResponse> = burst
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let rejected = outcomes
        .iter()
        .filter(|r| {
            matches!(
                r,
                WireResponse::Error {
                    kind: WireErrorKind::ClientQuota,
                    ..
                }
            )
        })
        .count();
    let served = outcomes
        .iter()
        .filter(|r| matches!(r, WireResponse::Report { .. }))
        .count();
    assert!(
        served >= 1,
        "at least one of the burst must be served: {outcomes:?}"
    );
    // The race can fall either way (the first request may complete before
    // the second arrives); when they do overlap, the rejection must be
    // typed. Either way the daemon never queued beyond its quota.
    assert_eq!(served + rejected, 2, "every request resolves: {outcomes:?}");
    daemon.shutdown();
}
