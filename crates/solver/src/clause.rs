//! Clause storage.
//!
//! Clauses live in a flat arena ([`ClauseDb`]) and are referenced by the
//! index type [`CRef`]. Learnt clauses carry an activity score and an LBD
//! (literal block distance) used by the clause-database reduction policy.

use crate::types::Lit;

/// Reference to a clause inside a [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CRef(pub(crate) u32);

impl CRef {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A disjunction of literals.
#[derive(Clone, Debug)]
pub struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
    pub(crate) activity: f64,
    pub(crate) lbd: u32,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool) -> Self {
        Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        }
    }

    /// The literals of the clause. The first two are the watched literals.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` if the clause has no literals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` if this clause was learnt during conflict analysis.
    #[inline]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }

    /// `true` if this clause has been removed by database reduction.
    #[inline]
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Literal block distance assigned when the clause was learnt.
    #[inline]
    pub fn lbd(&self) -> u32 {
        self.lbd
    }
}

/// Arena of clauses.
#[derive(Default)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of literals across live (non-deleted) clauses; used for stats.
    live_literals: usize,
}

impl ClauseDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a clause and return its reference.
    pub fn push(&mut self, lits: Vec<Lit>, learnt: bool) -> CRef {
        let cref = CRef(self.clauses.len() as u32);
        self.live_literals += lits.len();
        self.clauses.push(Clause::new(lits, learnt));
        cref
    }

    /// Mark a clause deleted. Watch lists drop deleted clauses lazily.
    pub fn delete(&mut self, cref: CRef) {
        let c = &mut self.clauses[cref.index()];
        if !c.deleted {
            c.deleted = true;
            self.live_literals -= c.lits.len();
        }
    }

    #[inline]
    pub fn get(&self, cref: CRef) -> &Clause {
        &self.clauses[cref.index()]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: CRef) -> &mut Clause {
        &mut self.clauses[cref.index()]
    }

    /// Total number of clauses ever added (including deleted ones).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` if no clause was ever added.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Number of literals in live clauses.
    pub fn live_literals(&self) -> usize {
        self.live_literals
    }

    /// Iterate over references of all live learnt clauses.
    pub fn learnt_refs(&self) -> impl Iterator<Item = CRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| CRef(i as u32))
    }

    /// Iterate over references of all live clauses.
    pub fn all_refs(&self) -> impl Iterator<Item = CRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| CRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(i: usize) -> Lit {
        Var::from_index(i).positive()
    }

    #[test]
    fn push_get_delete() {
        let mut db = ClauseDb::new();
        let c0 = db.push(vec![lit(0), lit(1)], false);
        let c1 = db.push(vec![lit(2), lit(3), lit(4)], true);
        assert_eq!(db.len(), 2);
        assert_eq!(db.live_literals(), 5);
        assert_eq!(db.get(c0).len(), 2);
        assert!(db.get(c1).is_learnt());
        db.delete(c1);
        assert!(db.get(c1).is_deleted());
        assert_eq!(db.live_literals(), 2);
        // Deleting twice is a no-op.
        db.delete(c1);
        assert_eq!(db.live_literals(), 2);
    }

    #[test]
    fn learnt_refs_filters() {
        let mut db = ClauseDb::new();
        db.push(vec![lit(0)], false);
        let l1 = db.push(vec![lit(1)], true);
        let l2 = db.push(vec![lit(2)], true);
        db.delete(l2);
        let learnt: Vec<_> = db.learnt_refs().collect();
        assert_eq!(learnt, vec![l1]);
        assert_eq!(db.all_refs().count(), 2);
    }
}
