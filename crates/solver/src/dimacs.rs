//! DIMACS CNF import/export, used for debugging the solver against external
//! tools and for loading benchmark formulas in tests.

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::fmt::Write as _;

/// A plain CNF formula: number of variables plus clauses of DIMACS literals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    pub num_vars: usize,
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Parse DIMACS CNF text. Comment lines (`c …`) and the problem line
    /// (`p cnf …`) are accepted; clauses are zero-terminated.
    pub fn parse(text: &str) -> Result<Cnf, String> {
        let mut num_vars = 0usize;
        let mut clauses = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                let fmt = parts.next().ok_or("missing format in problem line")?;
                if fmt != "cnf" {
                    return Err(format!("unsupported format {fmt:?}"));
                }
                num_vars = parts
                    .next()
                    .ok_or("missing variable count")?
                    .parse()
                    .map_err(|e| format!("bad variable count: {e}"))?;
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|e| format!("bad literal {tok:?}: {e}"))?;
                if v == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let lit = Lit::from_dimacs(v);
                    num_vars = num_vars.max(lit.var().index() + 1);
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Render in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for &l in clause {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Load this formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        self.load_into(&mut s);
        s
    }

    /// Add all variables and clauses of this formula to `solver`.
    pub fn load_into(&self, solver: &mut Solver) -> Vec<Var> {
        let base = solver.num_vars();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let shifted: Vec<Lit> = clause
                .iter()
                .map(|l| Lit::new(Var::from_index(base + l.var().index()), l.sign()))
                .collect();
            solver.add_clause(&shifted);
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "c a simple instance\np cnf 3 2\n1 -2 0\n2 3 0\n";

    #[test]
    fn parse_sample() {
        let cnf = Cnf::parse(SAMPLE).expect("parse");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let cnf = Cnf::parse(SAMPLE).expect("parse");
        let text = cnf.to_dimacs();
        let again = Cnf::parse(&text).expect("reparse");
        assert_eq!(cnf, again);
    }

    #[test]
    fn solve_parsed_formula() {
        let cnf = Cnf::parse(SAMPLE).expect("parse");
        let mut solver = cnf.to_solver();
        let m = solver.solve().model().expect("sat");
        for clause in &cnf.clauses {
            assert!(m.satisfies_clause(clause));
        }
    }

    #[test]
    fn parse_rejects_bad_format() {
        assert!(Cnf::parse("p sat 3 2\n1 0\n").is_err());
        assert!(Cnf::parse("p cnf x 2\n").is_err());
        assert!(Cnf::parse("1 two 0\n").is_err());
    }

    #[test]
    fn unsat_formula() {
        let cnf = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").expect("parse");
        let mut solver = cnf.to_solver();
        assert!(solver.solve().is_unsat());
    }
}
