//! Indexed max-heap ordered by variable activity, used for VSIDS branching.

use crate::types::Var;

/// A binary max-heap over variables keyed by an external activity array.
///
/// Supports `O(log n)` insert/remove-max and `decrease`/`increase` key via
/// [`VarHeap::update`]. Each variable appears at most once.
#[derive(Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Make room for variables up to index `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, var: Var) -> bool {
        self.positions
            .get(var.index())
            .map(|&p| p != ABSENT)
            .unwrap_or(false)
    }

    /// Insert `var` (no-op if already present).
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var.index() + 1);
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var);
        self.positions[var.index()] = pos;
        self.sift_up(pos, activity);
    }

    /// Remove and return the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.positions[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-establish heap order for `var` after its activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(var.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    /// Rebuild the heap from scratch (used after global activity rescaling;
    /// rescaling preserves order so this is rarely needed, but kept for
    /// safety when activities are reset).
    pub fn rebuild(&mut self, activity: &[f64]) {
        let vars: Vec<Var> = self.heap.drain(..).collect();
        for p in self.positions.iter_mut() {
            *p = ABSENT;
        }
        for v in vars {
            self.insert(v, activity);
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos].index()] > activity[self.heap[parent].index()] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len()
                && activity[self.heap[left].index()] > activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a].index()] = a;
        self.positions[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..4 {
            heap.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn update_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        // Bump variable 0 to the top.
        activity[0] = 10.0;
        heap.update(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0; 4];
        let mut heap = VarHeap::new();
        let v = Var::from_index(2);
        assert!(!heap.contains(v));
        heap.insert(v, &activity);
        assert!(heap.contains(v));
        heap.pop_max(&activity);
        assert!(!heap.contains(v));
    }

    #[test]
    fn rebuild_preserves_membership() {
        let mut activity = vec![1.0, 5.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity = vec![3.0, 1.0, 2.0];
        heap.rebuild(&activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
        assert_eq!(heap.len(), 2);
    }
}
