//! Bounded integer variables via the order encoding.
//!
//! An [`IntVar`] with domain `lo ..= hi` is represented by the Boolean
//! literals `[x ≥ v]` for `v ∈ lo+1 ..= hi`, chained by the channeling
//! clauses `[x ≥ v+1] → [x ≥ v]`. This is how the SCCL encoding represents
//! the `time(c, n)` chunk-availability variables and the per-step round
//! counts `r_s` (§3.4 of the paper) without a full SMT theory solver.

use crate::model::Model;
use crate::solver::Solver;
use crate::types::Lit;

/// A bounded integer variable `lo ≤ x ≤ hi`, order-encoded.
#[derive(Clone, Debug)]
pub struct IntVar {
    lo: i64,
    hi: i64,
    /// `ge_lits[i]` ⇔ `x ≥ lo + 1 + i`.
    ge_lits: Vec<Lit>,
}

impl IntVar {
    /// Create a new integer variable with inclusive domain `lo ..= hi`.
    pub fn new(solver: &mut Solver, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty integer domain {lo}..={hi}");
        let n = (hi - lo) as usize;
        let ge_lits: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
        for w in ge_lits.windows(2) {
            // [x ≥ v+1] → [x ≥ v]
            solver.add_implies(w[1], w[0]);
        }
        IntVar { lo, hi, ge_lits }
    }

    /// Smallest domain value.
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Largest domain value.
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Literal equivalent to `x ≥ v` (constant literals outside the domain).
    pub fn ge(&self, solver: &mut Solver, v: i64) -> Lit {
        if v <= self.lo {
            solver.true_lit()
        } else if v > self.hi {
            solver.false_lit()
        } else {
            self.ge_lits[(v - self.lo - 1) as usize]
        }
    }

    /// Literal equivalent to `x ≤ v`.
    pub fn le(&self, solver: &mut Solver, v: i64) -> Lit {
        !self.ge(solver, v + 1)
    }

    /// Literal equivalent to `x > v`.
    pub fn gt(&self, solver: &mut Solver, v: i64) -> Lit {
        self.ge(solver, v + 1)
    }

    /// Literal equivalent to `x < v`.
    pub fn lt(&self, solver: &mut Solver, v: i64) -> Lit {
        !self.ge(solver, v)
    }

    /// Fresh literal `e` with `e ⇔ (x = v)`.
    pub fn eq_lit(&self, solver: &mut Solver, v: i64) -> Lit {
        if v < self.lo || v > self.hi {
            return solver.false_lit();
        }
        let ge_v = self.ge(solver, v);
        let ge_v1 = self.ge(solver, v + 1);
        let e = solver.new_var().positive();
        solver.add_clause(&[!e, ge_v]);
        solver.add_clause(&[!e, !ge_v1]);
        solver.add_clause(&[e, !ge_v, ge_v1]);
        e
    }

    /// Constrain `x ≤ v`.
    pub fn assert_le(&self, solver: &mut Solver, v: i64) -> bool {
        let l = self.le(solver, v);
        solver.add_clause(&[l])
    }

    /// Constrain `x ≥ v`.
    pub fn assert_ge(&self, solver: &mut Solver, v: i64) -> bool {
        let l = self.ge(solver, v);
        solver.add_clause(&[l])
    }

    /// Constrain `x = v`.
    pub fn assert_eq(&self, solver: &mut Solver, v: i64) -> bool {
        self.assert_ge(solver, v) && self.assert_le(solver, v)
    }

    /// Constrain `cond → (x < y)` (strict), the shape of constraint C4 in
    /// the SCCL encoding (`snd → time_src < time_dst`).
    pub fn imply_less_than(solver: &mut Solver, cond: Lit, x: &IntVar, y: &IntVar) -> bool {
        let lo = x.lo.min(y.lo);
        let hi = x.hi;
        let mut ok = true;
        for v in lo..=hi {
            // cond ∧ [x ≥ v] → [y ≥ v + 1]
            let x_ge = x.ge(solver, v);
            let y_gt = y.ge(solver, v + 1);
            ok &= solver.add_clause(&[!cond, !x_ge, y_gt]);
        }
        ok
    }

    /// Constrain `x ≤ y` unconditionally.
    pub fn assert_le_var(solver: &mut Solver, x: &IntVar, y: &IntVar) -> bool {
        let mut ok = true;
        for v in x.lo..=x.hi {
            let x_ge = x.ge(solver, v);
            let y_ge = y.ge(solver, v);
            ok &= solver.add_clause(&[!x_ge, y_ge]);
        }
        ok
    }

    /// Pseudo-Boolean terms summing to `coef · (x − lo)`.
    ///
    /// Useful to place the variable on the left-hand side of a `≤`
    /// constraint: `x − lo = Σ_v [x ≥ v]`.
    pub fn value_terms(&self, coef: u64) -> Vec<(u64, Lit)> {
        self.ge_lits.iter().map(|&l| (coef, l)).collect()
    }

    /// Pseudo-Boolean terms summing to `coef · (hi − x)`.
    ///
    /// Used to move `−coef·x` to the left-hand side of a `≤` constraint:
    /// `hi − x = Σ_v ¬[x ≥ v]`.
    pub fn slack_terms(&self, coef: u64) -> Vec<(u64, Lit)> {
        self.ge_lits.iter().map(|&l| (coef, !l)).collect()
    }

    /// Domain width `hi − lo`.
    pub fn width(&self) -> u64 {
        (self.hi - self.lo) as u64
    }

    /// Extract the integer value from a model.
    pub fn value_in(&self, model: &Model) -> i64 {
        // The channeling clauses make the ge literals monotone in any model,
        // so counting the true ones gives the value.
        self.lo + self.ge_lits.iter().filter(|&&l| model.lit_value(l)).count() as i64
    }
}

/// Constrain `Σ xᵢ = total` over order-encoded integer variables.
pub fn add_linear_eq(solver: &mut Solver, vars: &[&IntVar], total: i64) -> bool {
    let lo_sum: i64 = vars.iter().map(|v| v.lo).sum();
    let hi_sum: i64 = vars.iter().map(|v| v.hi).sum();
    if total < lo_sum || total > hi_sum {
        // Unsatisfiable: force it through an empty clause.
        return solver.add_clause(&[]);
    }
    // Upper bound: Σ (xᵢ − loᵢ) ≤ total − lo_sum.
    let mut up_terms: Vec<(u64, Lit)> = Vec::new();
    for v in vars {
        up_terms.extend(v.value_terms(1));
    }
    let ok1 = solver.add_pb_le(&up_terms, (total - lo_sum) as u64);
    // Lower bound: Σ (hiᵢ − xᵢ) ≤ hi_sum − total.
    let mut down_terms: Vec<(u64, Lit)> = Vec::new();
    for v in vars {
        down_terms.extend(v.slack_terms(1));
    }
    let ok2 = solver.add_pb_le(&down_terms, (hi_sum - total) as u64);
    ok1 && ok2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn domain_bounds_and_value() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 5);
        x.assert_eq(&mut s, 3);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 3);
    }

    #[test]
    fn out_of_domain_constants() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 2, 4);
        let always = x.ge(&mut s, 1);
        let never = x.ge(&mut s, 7);
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(always));
        assert!(!m.lit_value(never));
        let v = x.value_in(&m);
        assert!((2..=4).contains(&v));
    }

    #[test]
    fn eq_lit_is_exact() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 4);
        let e2 = x.eq_lit(&mut s, 2);
        s.add_clause(&[e2]);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 2);
    }

    #[test]
    fn eq_lit_negated_excludes_value() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 2);
        let e0 = x.eq_lit(&mut s, 0);
        let e1 = x.eq_lit(&mut s, 1);
        s.add_clause(&[!e0]);
        s.add_clause(&[!e1]);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 2);
    }

    #[test]
    fn eq_lit_out_of_domain_is_false() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 2);
        let e = x.eq_lit(&mut s, 9);
        let m = s.solve().model().expect("sat");
        assert!(!m.lit_value(e));
    }

    #[test]
    fn conflicting_bounds_unsat() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 3);
        x.assert_ge(&mut s, 3);
        x.assert_le(&mut s, 1);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn strict_less_than_conditional() {
        let mut s = Solver::new();
        let cond = s.new_var().positive();
        let x = IntVar::new(&mut s, 0, 3);
        let y = IntVar::new(&mut s, 0, 3);
        IntVar::imply_less_than(&mut s, cond, &x, &y);
        s.add_clause(&[cond]);
        x.assert_eq(&mut s, 2);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 2);
        assert_eq!(y.value_in(&m), 3);
    }

    #[test]
    fn strict_less_than_unsat_when_no_room() {
        let mut s = Solver::new();
        let cond = s.new_var().positive();
        let x = IntVar::new(&mut s, 0, 3);
        let y = IntVar::new(&mut s, 0, 3);
        IntVar::imply_less_than(&mut s, cond, &x, &y);
        s.add_clause(&[cond]);
        x.assert_eq(&mut s, 3);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn strict_less_than_vacuous_when_condition_false() {
        let mut s = Solver::new();
        let cond = s.new_var().positive();
        let x = IntVar::new(&mut s, 0, 3);
        let y = IntVar::new(&mut s, 0, 3);
        IntVar::imply_less_than(&mut s, cond, &x, &y);
        s.add_clause(&[!cond]);
        x.assert_eq(&mut s, 3);
        y.assert_eq(&mut s, 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn le_var_ordering() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 5);
        let y = IntVar::new(&mut s, 0, 5);
        IntVar::assert_le_var(&mut s, &x, &y);
        x.assert_ge(&mut s, 4);
        y.assert_le(&mut s, 4);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 4);
        assert_eq!(y.value_in(&m), 4);
    }

    #[test]
    fn linear_eq_distributes_total() {
        let mut s = Solver::new();
        let xs: Vec<IntVar> = (0..3).map(|_| IntVar::new(&mut s, 0, 4)).collect();
        let refs: Vec<&IntVar> = xs.iter().collect();
        add_linear_eq(&mut s, &refs, 7);
        let m = s.solve().model().expect("sat");
        let total: i64 = xs.iter().map(|x| x.value_in(&m)).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn linear_eq_infeasible_total() {
        let mut s = Solver::new();
        let xs: Vec<IntVar> = (0..2).map(|_| IntVar::new(&mut s, 0, 3)).collect();
        let refs: Vec<&IntVar> = xs.iter().collect();
        add_linear_eq(&mut s, &refs, 9);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn value_terms_in_pb_constraint() {
        // 2·x + y ≤ 5 with x ≥ 2 forces y ≤ 1.
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 0, 3);
        let y = IntVar::new(&mut s, 0, 3);
        let mut terms = x.value_terms(2);
        terms.extend(y.value_terms(1));
        s.add_pb_le(&terms, 5);
        x.assert_ge(&mut s, 2);
        y.assert_ge(&mut s, 1);
        let m = s.solve().model().expect("sat");
        assert!(2 * x.value_in(&m) + y.value_in(&m) <= 5);
        assert_eq!(y.value_in(&m), 1);
    }

    #[test]
    fn singleton_domain() {
        let mut s = Solver::new();
        let x = IntVar::new(&mut s, 7, 7);
        let m = s.solve().model().expect("sat");
        assert_eq!(x.value_in(&m), 7);
        assert_eq!(x.width(), 0);
    }
}
