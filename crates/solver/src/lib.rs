//! # sccl-solver
//!
//! A from-scratch CDCL SAT solver with pseudo-Boolean constraints and
//! order-encoded bounded integer variables.
//!
//! This crate is the decision-procedure substrate of the SCCL reproduction:
//! the paper ("Synthesizing Optimal Collective Algorithms", PPoPP 2021)
//! discharges its synthesis encoding to Z3's QF_LIA + pseudo-Boolean
//! fragment; every constraint the encoding generates (C1–C6 in §3.4) is over
//! Booleans, bounded integers and linear 0/1 sums, so this solver decides
//! exactly the same instances.
//!
//! ## Example
//!
//! ```
//! use sccl_solver::{Solver, IntVar};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause(&[a, b]);
//! solver.add_at_most_one(&[a, b]);
//! let x = IntVar::new(&mut solver, 0, 3);
//! x.assert_ge(&mut solver, 2);
//! let model = solver.solve().model().expect("satisfiable");
//! assert!(model.lit_value(a) ^ model.lit_value(b));
//! assert!(x.value_in(&model) >= 2);
//! ```

pub mod clause;
pub mod dimacs;
pub mod heap;
pub mod intvar;
pub mod luby;
pub mod model;
pub mod reference;
pub mod solver;
pub mod stats;
pub mod types;

pub use dimacs::Cnf;
pub use intvar::{add_linear_eq, IntVar};
pub use model::Model;
pub use reference::ReferenceFormula;
pub use solver::{Limits, SolveResult, Solver, SolverConfig};
pub use stats::SolverStats;
pub use types::{LBool, Lit, Var};
