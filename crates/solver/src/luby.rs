//! The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).

/// Returns the `i`-th element (1-based) of the Luby sequence.
///
/// The restart policy multiplies this by a base conflict interval.
pub fn luby(i: u64) -> u64 {
    // Find the finite subsequence that contains index `i`, and the index of
    // `i` within that subsequence (Knuth's method as used by MiniSat).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// Iterator over the Luby sequence scaled by `base`.
pub struct LubyRestarts {
    base: u64,
    index: u64,
}

impl LubyRestarts {
    pub fn new(base: u64) -> Self {
        LubyRestarts { base, index: 0 }
    }
}

impl Iterator for LubyRestarts {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let v = luby(self.index) * self.base;
        self.index += 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn restarts_iterator_scales() {
        let seq: Vec<u64> = LubyRestarts::new(100).take(7).collect();
        assert_eq!(seq, vec![100, 100, 200, 100, 100, 200, 400]);
    }

    #[test]
    fn luby_is_power_of_two() {
        for i in 0..200 {
            assert!(luby(i).is_power_of_two());
        }
    }
}
