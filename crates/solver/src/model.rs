//! Satisfying assignments extracted from the solver.

use crate::types::{Lit, Var};

/// A complete satisfying assignment.
///
/// Every variable created before the successful `solve` call has a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    pub(crate) fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the model assigns no variables (empty formula).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Truth value of a variable.
    pub fn var_value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Truth value of a literal.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.values[lit.var().index()] == lit.sign()
    }

    /// Evaluate a clause (disjunction of literals) under this model.
    pub fn satisfies_clause(&self, clause: &[Lit]) -> bool {
        clause.iter().any(|&l| self.lit_value(l))
    }

    /// Evaluate a weighted pseudo-Boolean sum `Σ coef·lit` under this model.
    pub fn pb_sum(&self, terms: &[(u64, Lit)]) -> u64 {
        terms
            .iter()
            .filter(|&&(_, l)| self.lit_value(l))
            .map(|&(c, _)| c)
            .sum()
    }

    /// Iterate over `(Var, bool)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Var::from_index(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_evaluation() {
        let m = Model::new(vec![true, false, true]);
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert!(m.var_value(v0));
        assert!(!m.var_value(v1));
        assert!(m.lit_value(v0.positive()));
        assert!(!m.lit_value(v0.negative()));
        assert!(m.lit_value(v1.negative()));
        assert!(m.satisfies_clause(&[v1.positive(), v0.positive()]));
        assert!(!m.satisfies_clause(&[v1.positive()]));
        assert_eq!(m.pb_sum(&[(2, v0.positive()), (3, v1.positive())]), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().filter(|&(_, v)| v).count(), 2);
    }
}
