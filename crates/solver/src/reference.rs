//! Brute-force reference solver used to cross-validate the CDCL engine in
//! tests and property-based tests. Only suitable for small formulas.

use crate::model::Model;
use crate::types::Lit;

/// A formula for the reference solver: clauses plus pseudo-Boolean `≤`
/// constraints over `num_vars` variables.
#[derive(Clone, Debug, Default)]
pub struct ReferenceFormula {
    pub num_vars: usize,
    pub clauses: Vec<Vec<Lit>>,
    pub pb_les: Vec<(Vec<(u64, Lit)>, u64)>,
}

impl ReferenceFormula {
    pub fn new(num_vars: usize) -> Self {
        ReferenceFormula {
            num_vars,
            clauses: Vec::new(),
            pb_les: Vec::new(),
        }
    }

    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    pub fn add_pb_le(&mut self, terms: &[(u64, Lit)], bound: u64) {
        self.pb_les.push((terms.to_vec(), bound));
    }

    fn assignment_satisfies(&self, bits: u64) -> bool {
        let value = |l: Lit| -> bool {
            let v = (bits >> l.var().index()) & 1 == 1;
            if l.sign() {
                v
            } else {
                !v
            }
        };
        for clause in &self.clauses {
            if !clause.iter().any(|&l| value(l)) {
                return false;
            }
        }
        for (terms, bound) in &self.pb_les {
            let sum: u64 = terms
                .iter()
                .filter(|&&(_, l)| value(l))
                .map(|&(c, _)| c)
                .sum();
            if sum > *bound {
                return false;
            }
        }
        true
    }

    /// Exhaustively search all `2^num_vars` assignments.
    ///
    /// Panics if `num_vars > 24` to avoid accidental blow-ups in tests.
    pub fn solve_exhaustive(&self) -> Option<Model> {
        assert!(
            self.num_vars <= 24,
            "reference solver limited to 24 variables"
        );
        let n = self.num_vars as u32;
        for bits in 0u64..(1u64 << n) {
            if self.assignment_satisfies(bits) {
                let values = (0..self.num_vars).map(|i| (bits >> i) & 1 == 1).collect();
                return Some(Model::new(values));
            }
        }
        None
    }

    /// Count the number of satisfying assignments (for sanity checks).
    pub fn count_models(&self) -> u64 {
        assert!(self.num_vars <= 24);
        let n = self.num_vars as u32;
        (0u64..(1u64 << n))
            .filter(|&bits| self.assignment_satisfies(bits))
            .count() as u64
    }

    /// Check that a model satisfies every constraint of this formula.
    pub fn check_model(&self, model: &Model) -> bool {
        for clause in &self.clauses {
            if !model.satisfies_clause(clause) {
                return false;
            }
        }
        for (terms, bound) in &self.pb_les {
            if model.pb_sum(terms) > *bound {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(i: usize) -> Lit {
        Var::from_index(i).positive()
    }

    #[test]
    fn simple_sat_and_count() {
        let mut f = ReferenceFormula::new(2);
        f.add_clause(&[lit(0), lit(1)]);
        assert!(f.solve_exhaustive().is_some());
        assert_eq!(f.count_models(), 3);
    }

    #[test]
    fn simple_unsat() {
        let mut f = ReferenceFormula::new(1);
        f.add_clause(&[lit(0)]);
        f.add_clause(&[!lit(0)]);
        assert!(f.solve_exhaustive().is_none());
        assert_eq!(f.count_models(), 0);
    }

    #[test]
    fn pb_constraint_limits_models() {
        let mut f = ReferenceFormula::new(3);
        f.add_pb_le(&[(1, lit(0)), (1, lit(1)), (1, lit(2))], 1);
        // At most one of three: 1 (none) + 3 (single) = 4 models.
        assert_eq!(f.count_models(), 4);
    }

    #[test]
    fn check_model_detects_violation() {
        let mut f = ReferenceFormula::new(2);
        f.add_clause(&[lit(0)]);
        let good = Model::new(vec![true, false]);
        let bad = Model::new(vec![false, false]);
        assert!(f.check_model(&good));
        assert!(!f.check_model(&bad));
    }
}
