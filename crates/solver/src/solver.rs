//! CDCL SAT solver with native pseudo-Boolean (linear `≤`) constraints.
//!
//! This is the decision procedure behind SCCL's synthesis encoding. The
//! paper discharges its constraint system (§3.4, C1–C6) to Z3; the encoding
//! only requires Booleans, bounded integers and linear sums of 0/1 terms, so
//! a conflict-driven clause-learning solver with counter-based
//! pseudo-Boolean propagation decides exactly the same problems.
//!
//! Features: two-watched-literal propagation, first-UIP clause learning,
//! VSIDS branching with phase saving, Luby restarts, LBD-based learnt-clause
//! database reduction, and pseudo-Boolean constraints propagated by slack
//! counting with eagerly materialized explanations.
//!
//! # Incremental solving
//!
//! The solver is incremental: clauses, pseudo-Boolean constraints and fresh
//! variables may be added between solve calls, and
//! [`Solver::solve_under_assumptions`] decides the formula under a
//! conjunction of assumption literals without making them permanent.
//! Assumptions are placed as the first decisions of the search (one per
//! decision level, MiniSat-style), so everything the solver accumulates —
//! learnt clauses, VSIDS activities, saved phases — is implied by the
//! formula alone and carries over to later calls. When the formula is
//! unsatisfiable *under the assumptions* (but not inherently), the failed
//! subset is available from [`Solver::failed_assumptions`], and the solver
//! remains usable — either keep probing with different assumption sets, or
//! make a retraction permanent by adding the negated assumption as a unit
//! clause. This is the engine of SCCL's warm Pareto sweep, which encodes
//! the shared base problem once and activates one `(S, R)` candidate at a
//! time purely through assumptions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clause::{CRef, ClauseDb};
use crate::heap::VarHeap;
use crate::luby::luby;
use crate::model::Model;
use crate::stats::SolverStats;
use crate::types::{LBool, Lit, Var};

/// Outcome of a `solve` call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The search budget (conflicts or wall-clock time) was exhausted.
    Unknown,
}

impl SolveResult {
    /// `true` iff the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` iff the result is [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Extract the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Resource limits for a single `solve_limited` call.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum wall-clock duration before giving up.
    pub max_time: Option<Duration>,
    /// Cooperative cancellation: when another thread sets this flag, the
    /// search aborts with [`SolveResult::Unknown`] at the next budget check
    /// of the CDCL restart loop. Used by the parallel Pareto scheduler to
    /// stop in-flight solves whose instances have become dominated.
    pub stop: Option<Arc<AtomicBool>>,
    /// A second cooperative stop flag with identical semantics, reserved
    /// for request deadlines. Kept separate from `stop` because the
    /// parallel Pareto scheduler overwrites `stop` with its own
    /// per-candidate cancel flag ([`Limits::with_stop`] replaces); a
    /// deadline raised by the serving layer must survive that.
    pub deadline: Option<Arc<AtomicBool>>,
}

impl Limits {
    /// No limits: run to completion.
    pub fn none() -> Self {
        Limits::default()
    }

    /// Limit by conflict count only.
    pub fn conflicts(n: u64) -> Self {
        Limits {
            max_conflicts: Some(n),
            ..Limits::default()
        }
    }

    /// Limit by wall-clock time only.
    pub fn time(d: Duration) -> Self {
        Limits {
            max_time: Some(d),
            ..Limits::default()
        }
    }

    /// Attach a cooperative stop flag (builder style).
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Attach a deadline stop flag (builder style). Checked alongside the
    /// ordinary stop flag; raising either aborts the search.
    pub fn with_deadline_flag(mut self, deadline: Arc<AtomicBool>) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tighten the conflict cap to at most `budget` (builder style): a
    /// caller-supplied cap survives when it is already tighter, an absent
    /// one becomes `budget`. This is how the warm Pareto sweep bounds one
    /// probe by its adaptive budget without ever *loosening* limits a
    /// user or a resumed solve already imposed.
    pub fn cap_conflicts(mut self, budget: u64) -> Limits {
        self.max_conflicts = Some(self.max_conflicts.map_or(budget, |user| user.min(budget)));
        self
    }

    /// The budget left after part of it was spent: a limit set derived from
    /// `self` with `elapsed` wall clock and `conflicts` deducted
    /// (saturating at zero — a zero remainder means the very next budget
    /// check fires). Lets a caller split one nominal budget across several
    /// solver calls, e.g. a solve followed by decode probes, without each
    /// call receiving a fresh grant.
    pub fn minus_consumed(&self, elapsed: Duration, conflicts: u64) -> Limits {
        Limits {
            max_conflicts: self.max_conflicts.map(|c| c.saturating_sub(conflicts)),
            max_time: self.max_time.map(|t| t.saturating_sub(elapsed)),
            stop: self.stop.clone(),
            deadline: self.deadline.clone(),
        }
    }

    /// `true` once either attached stop flag (if any) has been raised.
    pub fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
            || self
                .deadline
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// Tunable search parameters.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Variable activity decay factor (VSIDS).
    pub var_decay: f64,
    /// Clause activity decay factor.
    pub clause_decay: f64,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Initial cap on retained learnt clauses before database reduction.
    pub learnt_limit_start: usize,
    /// Growth factor of the learnt-clause cap after each reduction.
    pub learnt_limit_growth: f64,
    /// Remember the last assigned polarity of each variable.
    pub phase_saving: bool,
    /// Polarity used for variables that have never been assigned. `false`
    /// works well for the SCCL encoding where most send/step indicator
    /// variables should stay off.
    pub default_polarity: bool,
    /// Enable clause learning. Disabling it degrades the solver to
    /// chronological backtracking (used by the encoding-ablation bench).
    pub clause_learning: bool,
    /// Enable VSIDS; when disabled variables are picked in index order.
    pub vsids: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 128,
            learnt_limit_start: 4000,
            learnt_limit_growth: 1.3,
            phase_saving: true,
            default_polarity: false,
            clause_learning: true,
            vsids: true,
        }
    }
}

/// Why a variable is currently assigned.
#[derive(Clone, Debug, Default)]
enum Reason {
    /// Unassigned, a decision, or a level-0 fact.
    #[default]
    None,
    /// Propagated by a clause; the asserted literal is `lits[0]`.
    Clause(CRef),
    /// Propagated by a pseudo-Boolean constraint; the boxed slice is the
    /// reason clause with the asserted literal at position 0 and the
    /// negations of the constraint's true literals after it.
    Pb(Box<[Lit]>),
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

/// A linear pseudo-Boolean constraint `Σ coefᵢ·litᵢ ≤ bound` with
/// non-negative coefficients, propagated by slack counting.
#[derive(Clone, Debug)]
struct PbConstraint {
    terms: Vec<(u64, Lit)>,
    bound: u64,
    /// Sum of coefficients of literals currently assigned true.
    sum_true: u64,
    max_coef: u64,
}

/// Conflict discovered during propagation.
enum Conflict {
    Clause(CRef),
    /// All literals of this clause are false under the current assignment.
    Pb(Vec<Lit>),
}

/// The CDCL solver.
pub struct Solver {
    config: SolverConfig,
    clauses: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    pbs: Vec<PbConstraint>,
    /// For each literal code, the PB constraints containing that literal and
    /// its coefficient there.
    pb_occ: Vec<Vec<(u32, u64)>>,

    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order_heap: VarHeap,
    seen: Vec<bool>,
    analyze_toclear: Vec<Lit>,

    ok: bool,
    true_lit: Option<Lit>,
    stats: SolverStats,
    learnt_count: usize,
    learnt_limit: usize,
    /// Failed-assumption subset of the most recent
    /// `solve_under_assumptions` call that returned [`SolveResult::Unsat`]
    /// while the formula itself remained satisfiable.
    conflict_core: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create a solver with default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Create a solver with a custom configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let learnt_limit = config.learnt_limit_start;
        Solver {
            config,
            clauses: ClauseDb::new(),
            watches: Vec::new(),
            pbs: Vec::new(),
            pb_occ: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order_heap: VarHeap::new(),
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            ok: true,
            true_lit: None,
            stats: SolverStats::default(),
            learnt_count: 0,
            learnt_limit,
            conflict_core: Vec::new(),
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of user (non-learnt) clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.stats.original_clauses as usize
    }

    /// Number of pseudo-Boolean constraints retained.
    pub fn num_pb_constraints(&self) -> usize {
        self.pbs.len()
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The configuration the solver was built with. Incremental callers use
    /// this to check capabilities before issuing assumption probes
    /// (`solve_under_assumptions` requires clause learning).
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// `false` once unsatisfiability has been established at level 0.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Create a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.polarity.push(self.config.default_polarity);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.order_heap.grow(self.assigns.len());
        self.order_heap.insert(v, &self.activity);
        v
    }

    /// Create `n` fresh variables, returned in creation order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// A literal constrained true at level 0 (created lazily). Useful for
    /// encoding constants.
    pub fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.new_var().positive();
        self.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// A literal constrained false at level 0.
    pub fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }

    #[inline]
    fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    /// Current truth value of a literal (for inspection between calls).
    pub fn lit_value(&self, lit: Lit) -> LBool {
        self.value(lit)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // ------------------------------------------------------------------
    // Constraint input
    // ------------------------------------------------------------------

    /// Add a clause (disjunction of literals). Returns `false` if the
    /// formula is now known to be unsatisfiable.
    ///
    /// Must be called before `solve` (at decision level 0).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        // Tautology / satisfied / false-literal elimination at level 0.
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and ¬l (adjacent after sort)
            }
            match self.value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        self.stats.original_clauses += 1;
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], Reason::None);
                true
            }
            _ => {
                let cref = self.clauses.push(out, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    fn attach_clause(&mut self, cref: CRef) {
        let (l0, l1) = {
            let c = self.clauses.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    /// Add the pseudo-Boolean constraint `Σ coefᵢ·litᵢ ≤ bound`.
    ///
    /// Coefficients must be positive (zero-coefficient terms are dropped).
    /// Returns `false` if the formula is now known unsatisfiable.
    pub fn add_pb_le(&mut self, terms: &[(u64, Lit)], bound: u64) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        self.stats.pb_constraints += 1;

        // Merge duplicate literals and cancel complementary pairs.
        let mut merged: Vec<(u64, Lit)> = Vec::with_capacity(terms.len());
        {
            let mut sorted: Vec<(u64, Lit)> =
                terms.iter().copied().filter(|&(c, _)| c > 0).collect();
            sorted.sort_unstable_by_key(|&(_, l)| l.code());
            for (c, l) in sorted {
                if let Some(last) = merged.last_mut() {
                    if last.1 == l {
                        last.0 += c;
                        continue;
                    }
                }
                merged.push((c, l));
            }
        }
        let mut bound = bound as i128;
        let mut reduced: Vec<(u64, Lit)> = Vec::with_capacity(merged.len());
        let mut i = 0;
        while i < merged.len() {
            let (c, l) = merged[i];
            if i + 1 < merged.len() && merged[i + 1].1 == !l {
                // a·l + b·¬l  =  min(a,b) + |a-b|·(the larger-coefficient literal)
                let (c2, l2) = merged[i + 1];
                let common = c.min(c2);
                bound -= common as i128;
                if c > c2 {
                    reduced.push((c - c2, l));
                } else if c2 > c {
                    reduced.push((c2 - c, l2));
                }
                i += 2;
            } else {
                reduced.push((c, l));
                i += 1;
            }
        }
        if bound < 0 {
            self.ok = false;
            return false;
        }
        // Remove literals already assigned at level 0.
        let mut kept: Vec<(u64, Lit)> = Vec::with_capacity(reduced.len());
        for (c, l) in reduced {
            match self.value(l) {
                LBool::True => bound -= c as i128,
                LBool::False => {}
                LBool::Undef => kept.push((c, l)),
            }
        }
        if bound < 0 {
            self.ok = false;
            return false;
        }
        let mut bound = bound as u64;
        // Force literals whose coefficient alone exceeds the bound, then
        // re-check; repeat until stable.
        loop {
            let mut changed = false;
            let mut next: Vec<(u64, Lit)> = Vec::with_capacity(kept.len());
            for (c, l) in kept.drain(..) {
                if c > bound {
                    match self.value(l) {
                        LBool::True => {
                            self.ok = false;
                            return false;
                        }
                        LBool::False => {}
                        LBool::Undef => {
                            self.unchecked_enqueue(!l, Reason::None);
                        }
                    }
                    changed = true;
                } else {
                    next.push((c, l));
                }
            }
            kept = next;
            if !changed {
                break;
            }
            // Literals may have become assigned by the forcing above.
            let mut next: Vec<(u64, Lit)> = Vec::with_capacity(kept.len());
            for (c, l) in kept.drain(..) {
                match self.value(l) {
                    LBool::True => {
                        if c > bound {
                            self.ok = false;
                            return false;
                        }
                        bound -= c;
                    }
                    LBool::False => {}
                    LBool::Undef => next.push((c, l)),
                }
            }
            kept = next;
        }
        let total: u64 = kept.iter().map(|&(c, _)| c).sum();
        if total <= bound {
            return true; // trivially satisfied
        }
        if kept.is_empty() {
            return self.ok;
        }
        let max_coef = kept.iter().map(|&(c, _)| c).max().unwrap_or(0);
        let idx = self.pbs.len() as u32;
        for &(c, l) in &kept {
            self.pb_occ[l.code()].push((idx, c));
        }
        self.pbs.push(PbConstraint {
            terms: kept,
            bound,
            sum_true: 0,
            max_coef,
        });
        true
    }

    /// At most one of `lits` is true.
    pub fn add_at_most_one(&mut self, lits: &[Lit]) -> bool {
        let terms: Vec<(u64, Lit)> = lits.iter().map(|&l| (1, l)).collect();
        self.add_pb_le(&terms, 1)
    }

    /// At least one of `lits` is true.
    pub fn add_at_least_one(&mut self, lits: &[Lit]) -> bool {
        self.add_clause(lits)
    }

    /// Exactly one of `lits` is true.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) -> bool {
        self.add_at_least_one(lits) && self.add_at_most_one(lits)
    }

    /// `a → b`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) -> bool {
        self.add_clause(&[!a, b])
    }

    /// `cond → (l₁ ∨ l₂ ∨ …)`.
    pub fn add_implies_clause(&mut self, cond: Lit, clause: &[Lit]) -> bool {
        let mut lits = Vec::with_capacity(clause.len() + 1);
        lits.push(!cond);
        lits.extend_from_slice(clause);
        self.add_clause(&lits)
    }

    // ------------------------------------------------------------------
    // Assignment & propagation
    // ------------------------------------------------------------------

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert!(self.value(lit).is_undef());
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.sign());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
        // Keep PB slack counters in sync with the assignment at enqueue time
        // (symmetric with the decrement in `cancel_until`), so counters stay
        // consistent even when propagation is cut short by a conflict.
        for occ_idx in 0..self.pb_occ[lit.code()].len() {
            let (ci, coef) = self.pb_occ[lit.code()][occ_idx];
            self.pbs[ci as usize].sum_true += coef;
        }
    }

    /// How many watcher / pseudo-Boolean-occurrence *visits* `propagate`
    /// performs between polls of the cooperative stop flag. Polling per
    /// trail literal is not enough: one literal with a very long watcher or
    /// PB-occurrence list is traversed in full before the next poll, so a
    /// dense formula could delay cancellation arbitrarily. Counting visits
    /// bounds the poll latency by work actually done, while keeping the
    /// atomic load off the hot path.
    const STOP_POLL_INTERVAL: u32 = 2048;

    fn propagate(&mut self, limits: &Limits) -> Option<Conflict> {
        let mut visits: u32 = 0;
        let mut stopped = false;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            if let Some(conflict) = self.propagate_clauses(p, limits, &mut visits, &mut stopped) {
                return Some(conflict);
            }
            if !stopped {
                if let Some(conflict) = self.propagate_pb(p, limits, &mut visits, &mut stopped) {
                    return Some(conflict);
                }
            }
            if stopped {
                // The flag is sticky (only ever raised), so cutting the pass
                // short here is safe: the restart loop's budget check sees
                // the same value and aborts before any decision is made on
                // the partially propagated trail. Rewind the queue head so
                // that, should the solver be reused after the aborted call,
                // `p` is re-processed from scratch — both the watcher scan
                // and the PB occurrence scan are idempotent, and skipping
                // the tail of either would lose forced propagations.
                self.qhead -= 1;
                return None;
            }
        }
        None
    }

    /// Process clause watchers of the newly true literal `p`.
    fn propagate_clauses(
        &mut self,
        p: Lit,
        limits: &Limits,
        visits: &mut u32,
        stopped: &mut bool,
    ) -> Option<Conflict> {
        let watchers = std::mem::take(&mut self.watches[p.code()]);
        let mut keep: Vec<Watcher> = Vec::with_capacity(watchers.len());
        let mut conflict = None;
        let mut idx = 0;
        while idx < watchers.len() {
            *visits += 1;
            if *visits >= Self::STOP_POLL_INTERVAL {
                *visits = 0;
                if limits.stop_requested() {
                    // Abort mid-list: retain every unprocessed watcher so the
                    // list stays complete for the re-scan.
                    *stopped = true;
                    keep.extend_from_slice(&watchers[idx..]);
                    break;
                }
            }
            let w = watchers[idx];
            idx += 1;
            if self.value(w.blocker).is_true() {
                keep.push(w);
                continue;
            }
            if self.clauses.get(w.cref).is_deleted() {
                continue;
            }
            // Make sure the false watched literal (¬p) is at position 1.
            let false_lit = !p;
            {
                let c = self.clauses.get_mut(w.cref);
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], false_lit);
            }
            let first = self.clauses.get(w.cref).lits[0];
            if first != w.blocker && self.value(first).is_true() {
                keep.push(Watcher {
                    cref: w.cref,
                    blocker: first,
                });
                continue;
            }
            // Look for a new literal to watch.
            let new_watch = {
                let c = self.clauses.get(w.cref);
                c.lits[2..]
                    .iter()
                    .position(|&l| !self.value(l).is_false())
                    .map(|off| off + 2)
            };
            if let Some(k) = new_watch {
                let c = self.clauses.get_mut(w.cref);
                c.lits.swap(1, k);
                let new_lit = c.lits[1];
                self.watches[(!new_lit).code()].push(Watcher {
                    cref: w.cref,
                    blocker: first,
                });
                continue;
            }
            // Clause is unit or conflicting.
            keep.push(Watcher {
                cref: w.cref,
                blocker: first,
            });
            if self.value(first).is_false() {
                // Conflict: retain remaining (unprocessed) watchers and stop.
                self.qhead = self.trail.len();
                keep.extend_from_slice(&watchers[idx..]);
                conflict = Some(Conflict::Clause(w.cref));
                break;
            } else {
                self.unchecked_enqueue(first, Reason::Clause(w.cref));
            }
        }
        self.watches[p.code()] = keep;
        conflict
    }

    /// Update slack counters of PB constraints containing the newly true
    /// literal `p`; detect conflicts and propagate forced literals.
    fn propagate_pb(
        &mut self,
        p: Lit,
        limits: &Limits,
        visits: &mut u32,
        stopped: &mut bool,
    ) -> Option<Conflict> {
        let n_occ = self.pb_occ[p.code()].len();
        for occ_idx in 0..n_occ {
            *visits += 1;
            if *visits >= Self::STOP_POLL_INTERVAL {
                *visits = 0;
                if limits.stop_requested() {
                    // Safe to abort mid-scan: the caller rewinds the queue
                    // head, so the whole occurrence list is re-visited if the
                    // solver is used again (the scan is idempotent).
                    *stopped = true;
                    return None;
                }
            }
            let (ci, _coef) = self.pb_occ[p.code()][occ_idx];
            let ci = ci as usize;
            let (sum_true, bound, max_coef) = {
                let c = &self.pbs[ci];
                (c.sum_true, c.bound, c.max_coef)
            };
            if sum_true > bound {
                self.stats.pb_conflicts += 1;
                self.qhead = self.trail.len();
                let conflict_lits: Vec<Lit> = self.pbs[ci]
                    .terms
                    .iter()
                    .filter(|&&(_, l)| self.value(l).is_true())
                    .map(|&(_, l)| !l)
                    .collect();
                return Some(Conflict::Pb(conflict_lits));
            }
            let slack = bound - sum_true;
            if slack < max_coef {
                // Some unassigned literal may be forced false.
                let forced: Vec<Lit> = self.pbs[ci]
                    .terms
                    .iter()
                    .filter(|&&(c, l)| c > slack && self.value(l).is_undef())
                    .map(|&(_, l)| l)
                    .collect();
                if !forced.is_empty() {
                    let true_negs: Vec<Lit> = self.pbs[ci]
                        .terms
                        .iter()
                        .filter(|&&(_, l)| self.value(l).is_true())
                        .map(|&(_, l)| !l)
                        .collect();
                    for l in forced {
                        if self.value(l).is_undef() {
                            let mut reason = Vec::with_capacity(true_negs.len() + 1);
                            reason.push(!l);
                            reason.extend_from_slice(&true_negs);
                            self.stats.pb_propagations += 1;
                            self.unchecked_enqueue(!l, Reason::Pb(reason.into_boxed_slice()));
                        }
                    }
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the asserting literal
        let mut path_count: u32 = 0;
        let mut index = self.trail.len();
        let current_level = self.decision_level();
        self.analyze_toclear.clear();

        // Literals of the current reason/conflict side being examined.
        let mut pending: Vec<Lit> = match &conflict {
            Conflict::Clause(cref) => {
                self.bump_clause_activity(*cref);
                self.clauses.get(*cref).lits.clone()
            }
            Conflict::Pb(lits) => lits.clone(),
        };
        let mut first_iteration = true;

        loop {
            for &q in pending.iter().skip(if first_iteration { 0 } else { 1 }) {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.analyze_toclear.push(q);
                    self.bump_var_activity(v);
                    if self.level[v.index()] >= current_level {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !p;
                break;
            }
            pending = match &self.reason[p.var().index()] {
                Reason::Clause(cref) => {
                    let cref = *cref;
                    self.bump_clause_activity(cref);
                    self.clauses.get(cref).lits.clone()
                }
                Reason::Pb(lits) => lits.to_vec(),
                Reason::None => unreachable!("resolved literal must have a reason"),
            };
            debug_assert_eq!(pending[0].var(), p.var());
            first_iteration = false;
        }

        // Clear the seen flags.
        for &l in &self.analyze_toclear {
            self.seen[l.var().index()] = false;
        }
        let toclear = std::mem::take(&mut self.analyze_toclear);
        drop(toclear);

        // Backtrack level: the second-highest decision level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // Literal block distance.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (learnt, backtrack_level, lbd)
    }

    fn bump_var_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.config.vsids {
            self.order_heap.update(v, &self.activity);
        }
    }

    fn bump_clause_activity(&mut self, cref: CRef) {
        let c = self.clauses.get_mut(cref);
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let refs: Vec<CRef> = self.clauses.learnt_refs().collect();
            for r in refs {
                self.clauses.get_mut(r).activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    // ------------------------------------------------------------------
    // Backtracking & decisions
    // ------------------------------------------------------------------

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        for i in (keep..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            for occ_idx in 0..self.pb_occ[lit.code()].len() {
                let (ci, coef) = self.pb_occ[lit.code()][occ_idx];
                self.pbs[ci as usize].sum_true -= coef;
            }
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = Reason::None;
            if self.config.phase_saving {
                self.polarity[v.index()] = lit.sign();
            }
            self.order_heap.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if self.config.vsids {
            while let Some(v) = self.order_heap.pop_max(&self.activity) {
                if self.assigns[v.index()].is_undef() {
                    return Some(v);
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(Var::from_index)
                .find(|v| self.assigns[v.index()].is_undef())
        }
    }

    fn decide(&mut self, var: Var) {
        self.stats.decisions += 1;
        self.trail_lim.push(self.trail.len());
        let lit = Lit::new(var, self.polarity[var.index()]);
        self.unchecked_enqueue(lit, Reason::None);
    }

    /// Deterministic model completion: variables the search never had to
    /// assign (none in practice, since the search branches until every
    /// variable has a value, but kept total for safety) take the configured
    /// default polarity rather than their saved phase. Saved phases depend
    /// on the search history, so completing from them would make the model
    /// of one formula differ between a cold and a warm solver; the fixed
    /// polarity rule keeps decode-from-model reproducible.
    fn extract_model(&self) -> Model {
        let values: Vec<bool> = self
            .assigns
            .iter()
            .map(|v| match v {
                LBool::True => true,
                LBool::False => false,
                LBool::Undef => self.config.default_polarity,
            })
            .collect();
        Model::new(values)
    }

    /// Is the clause `cref` currently the reason of its first literal?
    fn is_reason_locked(&self, cref: CRef) -> bool {
        let first = self.clauses.get(cref).lits[0];
        if !self.value(first).is_true() {
            return false;
        }
        matches!(self.reason[first.var().index()], Reason::Clause(r) if r == cref)
    }

    fn reduce_learnt_db(&mut self) {
        let mut candidates: Vec<(CRef, u32, f64)> = self
            .clauses
            .learnt_refs()
            .filter(|&r| !self.is_reason_locked(r))
            .map(|r| {
                let c = self.clauses.get(r);
                (r, c.lbd(), c.activity)
            })
            .filter(|&(_, lbd, _)| lbd > 2)
            .collect();
        // Delete the worse half: high LBD first, low activity first.
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        });
        let to_delete = candidates.len() / 2;
        for &(r, _, _) in candidates.iter().take(to_delete) {
            self.clauses.delete(r);
            self.learnt_count -= 1;
            self.stats.removed_clauses += 1;
        }
        self.learnt_limit = (self.learnt_limit as f64 * self.config.learnt_limit_growth) as usize;
    }

    // ------------------------------------------------------------------
    // Main search loop
    // ------------------------------------------------------------------

    /// Compute the failed-assumption subset once the assumption `p` is found
    /// false at placement time: walk the implication trail backwards from
    /// `¬p`'s reasons, collecting every *decision* encountered — at placement
    /// time all decisions are assumptions, so the result is the subset of
    /// assumptions that (together with `p`) the formula refutes.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var().index();
            if !self.seen[v] {
                continue;
            }
            match &self.reason[v] {
                Reason::None => core.push(x),
                Reason::Clause(cref) => {
                    let lits = self.clauses.get(*cref).lits.clone();
                    for q in &lits[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
                Reason::Pb(lits) => {
                    let lits = lits.clone();
                    for q in &lits[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        core
    }

    /// The subset of assumptions under which the most recent
    /// [`Solver::solve_under_assumptions`] call proved unsatisfiability.
    /// Empty when the last call was satisfiable, ran out of budget, or
    /// established unsatisfiability of the formula itself (check
    /// [`Solver::is_ok`] to distinguish the latter).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Solve with no resource limits.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(Limits::none())
    }

    /// Solve within the given resource limits.
    pub fn solve_limited(&mut self, limits: Limits) -> SolveResult {
        self.solve_under_assumptions(&[], limits)
    }

    /// Solve under a conjunction of assumption literals within the given
    /// resource limits.
    ///
    /// Assumptions hold only for this call: they are placed as the first
    /// decisions of the search, so learnt clauses remain consequences of the
    /// formula alone and are retained afterwards (as are VSIDS activities
    /// and saved phases — the warm state incremental callers rely on).
    /// [`SolveResult::Unsat`] means unsatisfiable *under the assumptions*;
    /// when the formula itself is still satisfiable, [`Solver::is_ok`] stays
    /// `true` and [`Solver::failed_assumptions`] names the refuted subset.
    ///
    /// Requires clause learning (assumption semantics cannot be preserved by
    /// the chronological-backtracking ablation mode, which flips decisions).
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit], limits: Limits) -> SolveResult {
        assert!(
            self.config.clause_learning || assumptions.is_empty(),
            "solve_under_assumptions requires clause learning"
        );
        self.conflict_core.clear();
        self.stats.solve_calls += 1;
        self.stats.assumptions += assumptions.len() as u64;
        self.stats.reused_clauses += self.learnt_count as u64;
        if !self.ok {
            return SolveResult::Unsat;
        }
        let start = Instant::now();
        let start_conflicts = self.stats.conflicts;
        let mut restart_index: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_threshold = luby(restart_index) * self.config.restart_base;

        loop {
            match self.propagate(&limits) {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    if self.config.clause_learning {
                        let (learnt, bt_level, lbd) = self.analyze(conflict);
                        self.cancel_until(bt_level);
                        if learnt.len() == 1 {
                            self.unchecked_enqueue(learnt[0], Reason::None);
                        } else {
                            let cref = self.clauses.push(learnt.clone(), true);
                            self.clauses.get_mut(cref).lbd = lbd;
                            self.attach_clause(cref);
                            self.bump_clause_activity(cref);
                            self.learnt_count += 1;
                            self.stats.learnt_clauses += 1;
                            self.unchecked_enqueue(learnt[0], Reason::Clause(cref));
                        }
                        self.decay_activities();
                    } else {
                        // Chronological backtracking: flip the last decision.
                        let lvl = self.decision_level() - 1;
                        let decision = self.trail[self.trail_lim[lvl as usize]];
                        self.cancel_until(lvl);
                        if self.value(decision).is_undef() {
                            self.unchecked_enqueue(!decision, Reason::None);
                        } else if self.value(decision).is_true() {
                            if lvl == 0 {
                                self.ok = false;
                                return SolveResult::Unsat;
                            }
                            // Both phases exhausted along this branch; give up
                            // one more level (rare, handled conservatively).
                            self.cancel_until(lvl.saturating_sub(1));
                        }
                    }
                }
                None => {
                    // Budget checks (only between conflicts to keep them cheap).
                    if limits.stop_requested() {
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                    if let Some(max_c) = limits.max_conflicts {
                        if self.stats.conflicts - start_conflicts >= max_c {
                            self.cancel_until(0);
                            return SolveResult::Unknown;
                        }
                    }
                    if let Some(max_t) = limits.max_time {
                        if start.elapsed() >= max_t {
                            self.cancel_until(0);
                            return SolveResult::Unknown;
                        }
                    }
                    if conflicts_since_restart >= restart_threshold {
                        self.stats.restarts += 1;
                        restart_index += 1;
                        conflicts_since_restart = 0;
                        restart_threshold = luby(restart_index) * self.config.restart_base;
                        self.cancel_until(0);
                        continue;
                    }
                    if self.learnt_count > self.learnt_limit {
                        self.reduce_learnt_db();
                    }
                    // Place the next pending assumption (one per decision
                    // level) before branching freely.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value(a) {
                            LBool::True => {
                                // Already implied: open an empty level so
                                // the level ↔ assumption indexing stays
                                // aligned.
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::False => {
                                self.conflict_core = self.analyze_final(a);
                                self.cancel_until(0);
                                return SolveResult::Unsat;
                            }
                            LBool::Undef => {
                                self.stats.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                self.unchecked_enqueue(a, Reason::None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            let model = self.extract_model();
                            self.cancel_until(0);
                            return SolveResult::Sat(model);
                        }
                        Some(v) => self.decide(v),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // pigeonhole column loops read best with indices
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        s.add_clause(&[a]);
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(a));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        assert!(s.add_clause(&[a]));
        assert!(!s.add_clause(&[!a]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        s.add_clause(&[v[0]]);
        let m = s.solve().model().expect("sat");
        for &l in &v {
            assert!(m.lit_value(l));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: unsatisfiable. Exercises clause learning.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for hole in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[!p[i][hole], !p[j][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let h = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..h).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for hole in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[!p[i][hole], !p[j][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 0 is satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit, val: bool| {
            if val {
                s.add_clause(&[a, b]);
                s.add_clause(&[!a, !b]);
            } else {
                s.add_clause(&[!a, b]);
                s.add_clause(&[a, !b]);
            }
        };
        xor(&mut s, v[0], v[1], true);
        xor(&mut s, v[1], v[2], true);
        xor(&mut s, v[0], v[2], false);
        let m = s.solve().model().expect("sat");
        assert_ne!(m.lit_value(v[0]), m.lit_value(v[1]));
        assert_eq!(m.lit_value(v[0]), m.lit_value(v[2]));
    }

    #[test]
    fn xor_chain_unsat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1 is unsatisfiable (parity).
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            s.add_clause(&[v[a], v[b]]);
            s.add_clause(&[!v[a], !v[b]]);
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pb_at_most_one_propagates() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_at_most_one(&v);
        s.add_clause(&[v[2]]);
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(v[2]));
        assert!(!m.lit_value(v[0]));
        assert!(!m.lit_value(v[1]));
        assert!(!m.lit_value(v[3]));
    }

    #[test]
    fn pb_exactly_one() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_exactly_one(&v);
        let m = s.solve().model().expect("sat");
        assert_eq!(v.iter().filter(|&&l| m.lit_value(l)).count(), 1);
    }

    #[test]
    fn pb_cardinality_conflict() {
        // At most 2 of 5 true, but 3 forced true: unsat.
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        let terms: Vec<(u64, Lit)> = v.iter().map(|&l| (1, l)).collect();
        s.add_pb_le(&terms, 2);
        s.add_clause(&[v[0]]);
        s.add_clause(&[v[1]]);
        s.add_clause(&[v[2]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pb_weighted_bound() {
        // 3a + 2b + 2c ≤ 5 with a forced true: b and c cannot both be true.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_pb_le(&[(3, v[0]), (2, v[1]), (2, v[2])], 5);
        s.add_clause(&[v[0]]);
        s.add_clause(&[v[1], v[2]]);
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(v[0]));
        assert!(m.lit_value(v[1]) ^ m.lit_value(v[2]));
    }

    #[test]
    fn pb_weighted_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_pb_le(&[(3, v[0]), (3, v[1]), (3, v[2])], 5);
        s.add_clause(&[v[0]]);
        s.add_clause(&[v[1]]);
        assert!(!s.is_ok() || s.solve().is_unsat());
    }

    #[test]
    fn pb_coefficient_exceeding_bound_forces_literal() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        // 5a + 1b ≤ 3 forces a = false immediately.
        s.add_pb_le(&[(5, v[0]), (1, v[1])], 3);
        let m = s.solve().model().expect("sat");
        assert!(!m.lit_value(v[0]));
    }

    #[test]
    fn pb_trivially_satisfied_is_dropped() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_pb_le(&[(1, v[0]), (1, v[1]), (1, v[2])], 3);
        assert_eq!(s.num_pb_constraints(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn pb_complementary_literals_normalized() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        // 2a + 3¬a + b ≤ 3  ≡  2 + (¬a) + b ≤ 3  ≡  ¬a + b ≤ 1.
        s.add_pb_le(&[(2, a), (3, !a), (1, b)], 3);
        s.add_clause(&[b]);
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(b));
        assert!(
            m.lit_value(a),
            "¬a must be false since b consumed the slack"
        );
    }

    #[test]
    fn true_and_false_lits() {
        let mut s = Solver::new();
        let t = s.true_lit();
        let f = s.false_lit();
        let m = s.solve().model().expect("sat");
        assert!(m.lit_value(t));
        assert!(!m.lit_value(f));
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let n = 8;
        let h = 7;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..h).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for hole in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[!p[i][hole], !p[j][hole]]);
                }
            }
        }
        let result = s.solve_limited(Limits::conflicts(5));
        assert_eq!(result, SolveResult::Unknown);
    }

    /// A hard pigeonhole instance (UNSAT, large search tree) used by the
    /// cancellation tests.
    fn hard_pigeonhole(n: usize) -> Solver {
        let h = n - 1;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..h).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for hole in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[!p[i][hole], !p[j][hole]]);
                }
            }
        }
        s
    }

    #[test]
    fn pre_raised_stop_flag_aborts_immediately() {
        let mut s = hard_pigeonhole(10);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let start = std::time::Instant::now();
        let result = s.solve_limited(Limits::none().with_stop(stop));
        assert_eq!(result, SolveResult::Unknown);
        // The search must abort at the first budget check, long before the
        // instance could be decided.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn stop_flag_interrupts_long_running_solve() {
        // A 12-pigeon instance takes far longer than the interrupt delay;
        // the solve must return Unknown shortly after the flag is raised.
        let mut solver = hard_pigeonhole(12);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let interrupter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let start = std::time::Instant::now();
        let result = solver.solve_limited(Limits::none().with_stop(stop));
        interrupter.join().expect("interrupter thread");
        assert_eq!(result, SolveResult::Unknown);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "stop flag was not honoured in time"
        );
        // The solver remains usable after an interrupted solve: the same
        // instance still decides UNSAT when run to completion.
        assert!(solver.is_ok());
        assert!(hard_pigeonhole(6).solve().is_unsat());
    }

    #[test]
    fn without_clause_learning_still_correct() {
        let config = SolverConfig {
            clause_learning: false,
            ..Default::default()
        };
        let mut s = Solver::with_config(config);
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for hole in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[!p[i][hole], !p[j][hole]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn without_vsids_still_correct() {
        let config = SolverConfig {
            vsids: false,
            ..Default::default()
        };
        let mut s = Solver::with_config(config);
        let v: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
        s.add_exactly_one(&v);
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1]]);
        let m = s.solve().model().expect("sat");
        assert_eq!(v.iter().filter(|&&l| m.lit_value(l)).count(), 1);
        assert!(!m.lit_value(v[0]) && !m.lit_value(v[1]));
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        s.add_clause(&[a, !a]);
        assert_eq!(s.clauses.len(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n_vars = 20;
            let n_clauses = 60;
            let mut s = Solver::new();
            let vars: Vec<Lit> = (0..n_vars).map(|_| s.new_var().positive()).collect();
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| {
                        let l = vars[rng.gen_range(0..n_vars)];
                        if rng.gen_bool(0.5) {
                            l
                        } else {
                            !l
                        }
                    })
                    .collect();
                clauses.push(clause.clone());
                s.add_clause(&clause);
            }
            if let SolveResult::Sat(m) = s.solve() {
                for c in &clauses {
                    assert!(m.satisfies_clause(c), "model violates clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let a1 = s.new_var().positive();
        let a2 = s.new_var().positive();
        s.add_implies(a1, x);
        s.add_implies(a2, !x);
        let m = s
            .solve_under_assumptions(&[a1], Limits::none())
            .model()
            .expect("sat under a1");
        assert!(m.lit_value(x));
        let m = s
            .solve_under_assumptions(&[a2], Limits::none())
            .model()
            .expect("sat under a2");
        assert!(!m.lit_value(x));
        // Contradictory only together; the formula itself stays consistent.
        let r = s.solve_under_assumptions(&[a1, a2], Limits::none());
        assert!(r.is_unsat());
        assert!(s.is_ok(), "assumption-unsat must not poison the solver");
        let mut core = s.failed_assumptions().to_vec();
        core.sort_unstable();
        let mut expected = vec![a1, a2];
        expected.sort_unstable();
        assert_eq!(core, expected);
        assert!(s.solve().is_sat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn assumption_contradicting_level0_fact_has_singleton_core() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        s.add_clause(&[!x]);
        let r = s.solve_under_assumptions(&[x], Limits::none());
        assert!(r.is_unsat());
        assert!(s.is_ok());
        assert_eq!(s.failed_assumptions(), &[x]);
    }

    #[test]
    fn already_true_assumption_is_a_no_op_level() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let y = s.new_var().positive();
        s.add_clause(&[x]);
        s.add_clause(&[!x, y]);
        let m = s
            .solve_under_assumptions(&[x, y], Limits::none())
            .model()
            .expect("sat");
        assert!(m.lit_value(x) && m.lit_value(y));
    }

    #[test]
    fn retire_candidate_via_activation_literal() {
        // An activation-gated pigeonhole: UNSAT while assumed, harmless once
        // retired — the shape of the incremental Pareto sweep.
        let n = 4;
        let h = 3;
        let mut s = Solver::new();
        let act = s.new_var().positive();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..h).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            let mut clause = vec![!act];
            clause.extend_from_slice(row);
            s.add_clause(&clause);
        }
        for hole in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[!act, !p[i][hole], !p[j][hole]]);
                }
            }
        }
        let r = s.solve_under_assumptions(&[act], Limits::none());
        assert!(r.is_unsat());
        assert!(s.is_ok());
        assert_eq!(s.failed_assumptions(), &[act]);
        // Retire the candidate and keep solving: the formula is now SAT.
        assert!(s.add_clause(&[!act]));
        let m = s.solve().model().expect("sat after retirement");
        assert!(!m.lit_value(act));
    }

    #[test]
    fn learnt_clauses_are_reused_across_calls() {
        let n = 5;
        let h = 4;
        let mut s = Solver::new();
        let act = s.new_var().positive();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..h).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            let mut clause = vec![!act];
            clause.extend_from_slice(row);
            s.add_clause(&clause);
        }
        for hole in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[!act, !p[i][hole], !p[j][hole]]);
                }
            }
        }
        assert!(s.solve_under_assumptions(&[act], Limits::none()).is_unsat());
        let learnt_after_first = s.stats().learnt_clauses;
        assert!(learnt_after_first > 0, "the pigeonhole must learn clauses");
        assert!(s.solve_under_assumptions(&[act], Limits::none()).is_unsat());
        assert_eq!(s.stats().solve_calls, 2);
        assert_eq!(s.stats().assumptions, 2);
        assert!(
            s.stats().reused_clauses > 0,
            "second call must start from retained learnt clauses"
        );
    }

    #[test]
    fn solve_under_assumptions_respects_budget() {
        let mut s = hard_pigeonhole(10);
        let a = s.new_var().positive();
        let r = s.solve_under_assumptions(&[a], Limits::conflicts(3));
        assert_eq!(r, SolveResult::Unknown);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn stats_are_tracked() {
        let mut s = Solver::new();
        let v: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        s.add_exactly_one(&v);
        s.solve();
        assert!(s.stats().propagations > 0);
        assert_eq!(s.stats().pb_constraints, 1);
    }
}
