//! Search statistics reported by the solver.

/// Counters accumulated during one [`crate::Solver::solve`] call (and across
/// calls, since they are never reset automatically).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated (unit + pseudo-Boolean).
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently retained.
    pub learnt_clauses: u64,
    /// Number of learnt clauses removed by database reduction.
    pub removed_clauses: u64,
    /// Number of problem clauses added by the user.
    pub original_clauses: u64,
    /// Number of pseudo-Boolean constraints added by the user.
    pub pb_constraints: u64,
    /// Number of conflicts caused by pseudo-Boolean constraints.
    pub pb_conflicts: u64,
    /// Number of literals propagated by pseudo-Boolean constraints.
    pub pb_propagations: u64,
    /// Number of `solve`/`solve_under_assumptions` calls answered.
    pub solve_calls: u64,
    /// Total assumption literals placed across all solve calls.
    pub assumptions: u64,
    /// Learnt clauses already in the database at the start of a solve call,
    /// summed over calls: the clause reuse an incremental caller gets for
    /// free relative to re-encoding from scratch.
    pub reused_clauses: u64,
}

impl SolverStats {
    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "decisions={} propagations={} conflicts={} restarts={} learnt={} pb_constraints={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.pb_constraints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_counts() {
        let stats = SolverStats {
            decisions: 10,
            conflicts: 3,
            ..Default::default()
        };
        let s = stats.summary();
        assert!(s.contains("decisions=10"));
        assert!(s.contains("conflicts=3"));
    }
}
