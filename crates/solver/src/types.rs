//! Core identifier types shared across the solver: variables, literals and
//! the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
///
/// Variables are dense indices handed out by [`crate::Solver::new_var`];
/// the `u32` representation keeps the trail and watch lists compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Construct a variable from a raw index. Intended for tests and I/O
    /// code (DIMACS); normal clients should use `Solver::new_var`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        Var(idx as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (1 - sign)` so that a literal and its negation
/// differ only in the lowest bit. `sign == true` means the positive
/// (non-negated) literal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Build a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, sign: bool) -> Self {
        Lit(var.0 << 1 | (!sign as u32))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal of its variable.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code usable as an index into literal-indexed tables
    /// (watch lists, occurrence lists).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// DIMACS-style representation: 1-based, negative for negated literals.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.sign() {
            v
        } else {
            -v
        }
    }

    /// Parse a DIMACS-style literal (non-zero integer).
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal must be non-zero");
        let var = Var::from_index((value.unsigned_abs() - 1) as usize);
        Lit::new(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

/// Three-valued truth assignment used during search.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    True,
    False,
    #[default]
    Undef,
}

impl LBool {
    /// Truth value of a literal given the truth value of its variable.
    #[inline]
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.sign()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }

    /// Convert from a Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` iff this is [`LBool::True`].
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// `true` iff this is [`LBool::False`].
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// `true` iff this is [`LBool::Undef`].
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip_var_sign() {
        let v = Var::from_index(7);
        let p = Lit::new(v, true);
        let n = Lit::new(v, false);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.sign());
        assert!(!n.sign());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.code(), n.code());
    }

    #[test]
    fn lit_negation_is_involution() {
        for idx in 0..64 {
            for sign in [true, false] {
                let l = Lit::new(Var::from_index(idx), sign);
                assert_eq!(!!l, l);
            }
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        for value in [-5i64, -1, 1, 9] {
            assert_eq!(Lit::from_dimacs(value).to_dimacs(), value);
        }
    }

    #[test]
    fn var_positive_negative() {
        let v = Var::from_index(3);
        assert!(v.positive().sign());
        assert!(!v.negative().sign());
        assert_eq!(!v.positive(), v.negative());
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var::from_index(0);
        assert_eq!(LBool::True.of_lit(v.positive()), LBool::True);
        assert_eq!(LBool::True.of_lit(v.negative()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.positive()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.negative()), LBool::True);
        assert_eq!(LBool::Undef.of_lit(v.positive()), LBool::Undef);
    }

    #[test]
    fn lit_code_roundtrip() {
        for code in 0..32 {
            assert_eq!(Lit::from_code(code).code(), code);
        }
    }
}
