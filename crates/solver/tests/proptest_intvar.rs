//! Property-based tests for order-encoded integer variables.

use proptest::prelude::*;
use sccl_solver::{add_linear_eq, IntVar, SolveResult, Solver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A variable constrained to a sub-range takes a value in that range.
    #[test]
    fn range_constraints_are_respected(
        hi in 1i64..12,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let lower = (hi as f64 * lo_frac) as i64;
        let upper = lower.max((hi as f64 * hi_frac) as i64);
        let mut solver = Solver::new();
        let x = IntVar::new(&mut solver, 0, hi);
        x.assert_ge(&mut solver, lower);
        x.assert_le(&mut solver, upper);
        let model = solver.solve().model().expect("non-empty range is satisfiable");
        let v = x.value_in(&model);
        prop_assert!(v >= lower && v <= upper, "{v} outside [{lower}, {upper}]");
    }

    /// `eq_lit` is consistent with the extracted value.
    #[test]
    fn eq_literal_matches_value(hi in 1i64..10, target in 0i64..10) {
        let mut solver = Solver::new();
        let x = IntVar::new(&mut solver, 0, hi);
        let eq = x.eq_lit(&mut solver, target);
        let model = solver.solve().model().expect("satisfiable");
        prop_assert_eq!(model.lit_value(eq), x.value_in(&model) == target && target <= hi);
    }

    /// `imply_less_than` forces a strict ordering whenever the condition
    /// literal is true.
    #[test]
    fn conditional_strict_order(hi in 1i64..8, force_cond in any::<bool>()) {
        let mut solver = Solver::new();
        let cond = solver.new_var().positive();
        let x = IntVar::new(&mut solver, 0, hi);
        let y = IntVar::new(&mut solver, 0, hi);
        IntVar::imply_less_than(&mut solver, cond, &x, &y);
        solver.add_clause(&[if force_cond { cond } else { !cond }]);
        let model = solver.solve().model().expect("satisfiable");
        if force_cond {
            prop_assert!(x.value_in(&model) < y.value_in(&model));
        }
    }

    /// `add_linear_eq` makes the variables sum exactly to the target, and is
    /// UNSAT for out-of-range targets.
    #[test]
    fn linear_sum_is_exact(widths in prop::collection::vec(1i64..5, 1..5), target in 0i64..20) {
        let mut solver = Solver::new();
        let vars: Vec<IntVar> = widths.iter().map(|&w| IntVar::new(&mut solver, 0, w)).collect();
        let refs: Vec<&IntVar> = vars.iter().collect();
        add_linear_eq(&mut solver, &refs, target);
        let max_total: i64 = widths.iter().sum();
        match solver.solve() {
            SolveResult::Sat(model) => {
                let total: i64 = vars.iter().map(|v| v.value_in(&model)).sum();
                prop_assert_eq!(total, target);
                prop_assert!(target <= max_total);
            }
            SolveResult::Unsat => prop_assert!(target > max_total),
            SolveResult::Unknown => prop_assert!(false, "no limits were set"),
        }
    }

    /// Values extracted from any model always lie within the declared domain.
    #[test]
    fn value_always_in_domain(lo in -5i64..5, width in 0i64..8) {
        let hi = lo + width;
        let mut solver = Solver::new();
        let x = IntVar::new(&mut solver, lo, hi);
        let model = solver.solve().model().expect("satisfiable");
        let v = x.value_in(&model);
        prop_assert!(v >= lo && v <= hi);
    }
}
