//! Property-based tests: the CDCL solver against the exhaustive reference
//! solver on random formulas.

use proptest::prelude::*;
use sccl_solver::{Lit, ReferenceFormula, SolveResult, Solver, SolverConfig, Var};

/// Strategy: a random clause over `num_vars` variables with 1..=max_len
/// literals.
fn clause_strategy(num_vars: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..=max_len)
}

fn to_lits(clause: &[(usize, bool)]) -> Vec<Lit> {
    clause
        .iter()
        .map(|&(v, sign)| Lit::new(Var::from_index(v), sign))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAT/UNSAT verdicts agree with exhaustive enumeration, and returned
    /// models satisfy every clause.
    #[test]
    fn cdcl_agrees_with_reference_on_random_cnf(
        clauses in prop::collection::vec(clause_strategy(8, 4), 1..40)
    ) {
        let num_vars = 8;
        let mut reference = ReferenceFormula::new(num_vars);
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for clause in &clauses {
            let lits = to_lits(clause);
            reference.add_clause(&lits);
            solver.add_clause(&lits);
        }
        let expected_sat = reference.solve_exhaustive().is_some();
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected_sat, "solver found a model for an UNSAT formula");
                prop_assert!(reference.check_model(&model), "model violates a clause");
            }
            SolveResult::Unsat => prop_assert!(!expected_sat, "solver claims UNSAT for a SAT formula"),
            SolveResult::Unknown => prop_assert!(false, "no limits were set"),
        }
    }

    /// Same agreement when pseudo-Boolean constraints are mixed in.
    #[test]
    fn cdcl_agrees_with_reference_on_random_pb(
        clauses in prop::collection::vec(clause_strategy(7, 3), 0..15),
        pbs in prop::collection::vec(
            (prop::collection::vec((1u64..4, 0usize..7, any::<bool>()), 1..6), 0u64..8),
            1..6
        )
    ) {
        let num_vars = 7;
        let mut reference = ReferenceFormula::new(num_vars);
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for clause in &clauses {
            let lits = to_lits(clause);
            reference.add_clause(&lits);
            solver.add_clause(&lits);
        }
        for (terms, bound) in &pbs {
            let t: Vec<(u64, Lit)> = terms
                .iter()
                .map(|&(c, v, sign)| (c, Lit::new(Var::from_index(v), sign)))
                .collect();
            reference.add_pb_le(&t, *bound);
            solver.add_pb_le(&t, *bound);
        }
        let expected_sat = reference.solve_exhaustive().is_some();
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected_sat, "solver found a model for an UNSAT formula");
                prop_assert!(reference.check_model(&model), "model violates a constraint");
            }
            SolveResult::Unsat => prop_assert!(!expected_sat, "solver claims UNSAT for a SAT formula"),
            SolveResult::Unknown => prop_assert!(false, "no limits were set"),
        }
    }

    /// Whatever the configuration (learning or VSIDS disabled, different
    /// polarity), verdicts do not change.
    #[test]
    fn solver_configurations_agree(
        clauses in prop::collection::vec(clause_strategy(6, 3), 1..25)
    ) {
        let configs = [
            SolverConfig::default(),
            SolverConfig { clause_learning: false, ..Default::default() },
            SolverConfig { vsids: false, ..Default::default() },
            SolverConfig { default_polarity: true, phase_saving: false, ..Default::default() },
        ];
        let mut verdicts = Vec::new();
        for config in configs {
            let mut solver = Solver::with_config(config);
            for _ in 0..6 {
                solver.new_var();
            }
            for clause in &clauses {
                solver.add_clause(&to_lits(clause));
            }
            verdicts.push(solver.solve().is_sat());
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "verdicts differ: {verdicts:?}");
    }

    /// Exactly-one constraints produce exactly one true literal.
    #[test]
    fn exactly_one_invariant(n in 2usize..10, forced in prop::option::of(0usize..10)) {
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
        solver.add_exactly_one(&lits);
        if let Some(f) = forced {
            if f < n {
                solver.add_clause(&[lits[f]]);
            }
        }
        let model = solver.solve().model().expect("exactly-one is satisfiable");
        let count = lits.iter().filter(|&&l| model.lit_value(l)).count();
        prop_assert_eq!(count, 1);
        if let Some(f) = forced {
            if f < n {
                prop_assert!(model.lit_value(lits[f]));
            }
        }
    }
}
