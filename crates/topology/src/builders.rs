//! Builders for the topologies evaluated in the paper (NVIDIA DGX-1,
//! Gigabyte Z52 with AMD MI50 GPUs) and for the standard families used in
//! tests and additional experiments (rings, chains, stars, hypercubes,
//! meshes, fully-connected).

use crate::model::Topology;

/// Bidirectional ring of `n` nodes: node `i` is linked with `(i + 1) % n`
/// in both directions, `bandwidth` chunks per round per direction.
pub fn ring(n: usize, bandwidth: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("ring-{n}"), n);
    for i in 0..n {
        t.add_bidi_link(i, (i + 1) % n, bandwidth);
    }
    t
}

/// Unidirectional ring of `n` nodes: node `i` sends only to `(i + 1) % n`.
pub fn ring_unidirectional(n: usize, bandwidth: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("uniring-{n}"), n);
    for i in 0..n {
        t.add_link(i, (i + 1) % n, bandwidth);
    }
    t
}

/// Bidirectional chain (line) of `n` nodes.
pub fn chain(n: usize, bandwidth: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("chain-{n}"), n);
    for i in 0..n - 1 {
        t.add_bidi_link(i, i + 1, bandwidth);
    }
    t
}

/// Star of `n` nodes with node 0 at the centre.
pub fn star(n: usize, bandwidth: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("star-{n}"), n);
    for i in 1..n {
        t.add_bidi_link(0, i, bandwidth);
    }
    t
}

/// Fully-connected topology of `n` nodes.
pub fn fully_connected(n: usize, bandwidth: u64) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("fc-{n}"), n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                t.add_link(i, j, bandwidth);
            }
        }
    }
    t
}

/// Hypercube of dimension `dim` (`2^dim` nodes); neighbours differ in one
/// bit.
pub fn hypercube(dim: u32, bandwidth: u64) -> Topology {
    let n = 1usize << dim;
    let mut t = Topology::new(format!("hypercube-{dim}"), n);
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if i < j {
                t.add_bidi_link(i, j, bandwidth);
            }
        }
    }
    t
}

/// 2D mesh (grid) of `rows × cols` nodes with nearest-neighbour links.
pub fn mesh2d(rows: usize, cols: usize, bandwidth: u64) -> Topology {
    assert!(rows * cols >= 2);
    let mut t = Topology::new(format!("mesh-{rows}x{cols}"), rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                t.add_bidi_link(id(r, c), id(r, c + 1), bandwidth);
            }
            if r + 1 < rows {
                t.add_bidi_link(id(r, c), id(r + 1, c), bandwidth);
            }
        }
    }
    t
}

/// The NVLink ring orders of the DGX-1 (§2.2, §5.2.1).
///
/// The first Hamiltonian cycle has two NVLinks per hop, the second one.
pub const DGX1_DOUBLE_RING: [usize; 8] = [0, 1, 4, 5, 6, 7, 2, 3];
pub const DGX1_SINGLE_RING: [usize; 8] = [0, 2, 1, 3, 6, 4, 7, 5];

/// NVIDIA DGX-1: 8 V100 GPUs connected by NVLink (Figure 1 of the paper).
///
/// The topology is the union of two non-overlapping bidirectional
/// Hamiltonian cycles; hops of the first cycle have two NVLinks (2 chunks
/// per round), hops of the second have one. Every GPU therefore has 6
/// incoming and 6 outgoing NVLink "units".
pub fn dgx1() -> Topology {
    let mut t = Topology::new("dgx1", 8);
    for w in 0..8 {
        let a = DGX1_DOUBLE_RING[w];
        let b = DGX1_DOUBLE_RING[(w + 1) % 8];
        t.add_bidi_link(a, b, 2);
        t.set_transport(a, b, "nvlink-x2");
        t.set_transport(b, a, "nvlink-x2");
    }
    for w in 0..8 {
        let a = DGX1_SINGLE_RING[w];
        let b = DGX1_SINGLE_RING[(w + 1) % 8];
        t.add_bidi_link(a, b, 1);
        t.set_transport(a, b, "nvlink-x1");
        t.set_transport(b, a, "nvlink-x1");
    }
    t
}

/// The ring order used to model the Gigabyte Z52 (§5.2.2).
pub const AMD_Z52_RING: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// Gigabyte Z52: 8 AMD MI50 GPUs (Figure 3 of the paper).
///
/// xGMI links form two islands bridged by PCIe; because xGMI and PCIe could
/// not be used simultaneously, the paper models the machine as a single
/// bidirectional ring with one chunk per round on every hop and the same β
/// for both transports. GPUs 1 and 5 are the PCIe bridges between islands.
pub fn amd_z52() -> Topology {
    let mut t = Topology::new("amd-z52", 8);
    for w in 0..8 {
        let a = AMD_Z52_RING[w];
        let b = AMD_Z52_RING[(w + 1) % 8];
        t.add_bidi_link(a, b, 1);
        // Hops adjacent to the bridge GPUs are PCIe, the rest xGMI; the
        // split is descriptive only (same bandwidth either way).
        let transport = if a == 1 || b == 1 || a == 5 || b == 5 {
            "pcie"
        } else {
            "xgmi"
        };
        t.set_transport(a, b, transport);
        t.set_transport(b, a, transport);
    }
    t
}

/// An NVSwitch-style machine (DGX-2-like): `n` GPUs, all pairs connected
/// with the same per-round budget. With a full crossbar every collective
/// has diameter 1, so the interesting trade-offs collapse — useful as a
/// contrast to the DGX-1 in co-design experiments.
pub fn nvswitch(n: usize, bandwidth: u64) -> Topology {
    let mut t = fully_connected(n, bandwidth);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                t.set_transport(i, j, "nvswitch");
            }
        }
    }
    t
}

/// Two DGX-1 boxes bridged by `cross_links` InfiniBand-style links between
/// corresponding GPUs (GPU `i` of box 0 to GPU `i` of box 1), each with
/// `cross_bandwidth` chunks per round.
///
/// The paper synthesizes for a single node and leaves hierarchical
/// multi-node algorithms to systems like Horovod/BlueConnect/PLink (§6);
/// this builder exercises that future-work direction: the same synthesis
/// machinery runs unchanged on the 16-GPU two-box graph, it just gets a
/// much smaller bisection bandwidth.
pub fn dual_dgx1(cross_links: usize, cross_bandwidth: u64) -> Topology {
    assert!((1..=8).contains(&cross_links));
    let single = dgx1();
    let mut t = Topology::new("dual-dgx1", 16);
    for box_id in 0..2usize {
        let offset = box_id * 8;
        for &(src, dst) in &single.links() {
            let bw = single.link_bandwidth(src, dst).expect("link exists");
            t.add_link(src + offset, dst + offset, bw);
            t.set_transport(src + offset, dst + offset, "nvlink");
        }
    }
    for i in 0..cross_links {
        t.add_bidi_link(i, i + 8, cross_bandwidth);
        t.set_transport(i, i + 8, "infiniband");
        t.set_transport(i + 8, i, "infiniband");
    }
    t
}

/// A ring of rings: `groups` local rings of `group_size` nodes each, with
/// the first node of every group forming an outer ring at a (typically
/// lower) cross bandwidth.
///
/// This is the canonical hierarchical benchmark machine: a rack of
/// NVLink-class boxes whose node 0s are bridged by a network ring. Intra
/// links get `local_bandwidth` chunks per round, the outer ring
/// `cross_bandwidth`. Node `g * group_size + j` is member `j` of group `g`.
pub fn ring_of_rings(
    groups: usize,
    group_size: usize,
    local_bandwidth: u64,
    cross_bandwidth: u64,
) -> Topology {
    assert!(groups >= 2, "need at least two groups");
    assert!(group_size >= 2, "need at least two nodes per group");
    let n = groups * group_size;
    let mut t = Topology::new(format!("rings-{groups}x{group_size}"), n);
    for g in 0..groups {
        let base = g * group_size;
        if group_size == 2 {
            t.add_bidi_link(base, base + 1, local_bandwidth);
        } else {
            for j in 0..group_size {
                t.add_bidi_link(base + j, base + (j + 1) % group_size, local_bandwidth);
            }
        }
    }
    for g in 0..groups {
        let a = g * group_size;
        let b = ((g + 1) % groups) * group_size;
        if groups == 2 && g == 1 {
            break; // a 2-group outer "ring" is a single bidi link
        }
        t.add_bidi_link(a, b, cross_bandwidth);
        t.set_transport(a, b, "network");
        t.set_transport(b, a, "network");
    }
    t
}

/// A rack of DGX-1 boxes: `boxes` full [`dgx1`] machines whose GPU 0s are
/// bridged by a bidirectional InfiniBand ring with `cross_bandwidth` chunks
/// per round. GPU `b * 8 + i` is GPU `i` of box `b`.
pub fn dgx_rack(boxes: usize, cross_bandwidth: u64) -> Topology {
    assert!(boxes >= 2, "a rack needs at least two boxes");
    let single = dgx1();
    let mut t = Topology::new(format!("dgx-rack-{boxes}"), boxes * 8);
    for box_id in 0..boxes {
        let offset = box_id * 8;
        for &(src, dst) in &single.links() {
            let bw = single.link_bandwidth(src, dst).expect("link exists");
            t.add_link(src + offset, dst + offset, bw);
            if let Some(transport) = single.transport(src, dst) {
                t.set_transport(src + offset, dst + offset, transport);
            }
        }
    }
    for box_id in 0..boxes {
        let a = box_id * 8;
        let b = ((box_id + 1) % boxes) * 8;
        if boxes == 2 && box_id == 1 {
            break; // two boxes: one bidi bridge, not a doubled "ring"
        }
        t.add_bidi_link(a, b, cross_bandwidth);
        t.set_transport(a, b, "infiniband");
        t.set_transport(b, a, "infiniband");
    }
    t
}

/// A DGX-1 whose inter-GPU links are all reduced to a single NVLink, used
/// in ablation experiments on how link multiplicity changes the frontier.
pub fn dgx1_single_links() -> Topology {
    let mut t = Topology::new("dgx1-single", 8);
    for ring_order in [DGX1_DOUBLE_RING, DGX1_SINGLE_RING] {
        for w in 0..8 {
            let a = ring_order[w];
            let b = ring_order[(w + 1) % 8];
            t.add_bidi_link(a, b, 1);
        }
    }
    t
}

/// Parse a textual topology specification, as accepted by the `sccl` CLI
/// and by batch manifests:
///
/// * named machines — `dgx1`, `dgx1-single`, `amd` (aka `amd-z52`, `z52`)
/// * parameterized families — `ring:N`, `uniring:N`, `chain:N`, `star:N`,
///   `fc:N`, `hypercube:D`, `mesh:RxC`, `nvswitch:N`
/// * hierarchical machines — `rings:GxM` (`G` local rings of `M` nodes,
///   local bandwidth 2, leader ring bandwidth 1), `dgx-rack:N` (`N` DGX-1
///   boxes bridged by an InfiniBand ring on GPU 0s)
///
/// Returns `None` for anything unrecognised.
pub fn parse_spec(spec: &str) -> Option<Topology> {
    if let Some((kind, arg)) = spec.split_once(':') {
        let parse_n = || arg.parse::<usize>().ok();
        return match kind {
            "rings" => {
                let (g, m) = arg.split_once('x')?;
                Some(ring_of_rings(g.parse().ok()?, m.parse().ok()?, 2, 1))
            }
            "dgx-rack" => Some(dgx_rack(parse_n()?, 1)),
            "ring" => Some(ring(parse_n()?, 1)),
            "uniring" => Some(ring_unidirectional(parse_n()?, 1)),
            "chain" => Some(chain(parse_n()?, 1)),
            "star" => Some(star(parse_n()?, 1)),
            "fc" => Some(fully_connected(parse_n()?, 1)),
            "hypercube" => Some(hypercube(arg.parse().ok()?, 1)),
            "nvswitch" => Some(nvswitch(parse_n()?, 1)),
            "mesh" => {
                let (r, c) = arg.split_once('x')?;
                Some(mesh2d(r.parse().ok()?, c.parse().ok()?, 1))
            }
            _ => None,
        };
    }
    match spec {
        "dgx1" => Some(dgx1()),
        "dgx1-single" => Some(dgx1_single_links()),
        "amd" | "amd-z52" | "z52" => Some(amd_z52()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ring_structure() {
        let t = ring(4, 2);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_links(), 8);
        assert_eq!(t.link_bandwidth(0, 1), Some(2));
        assert_eq!(t.link_bandwidth(1, 0), Some(2));
        assert_eq!(t.link_bandwidth(0, 2), None);
    }

    #[test]
    fn star_structure() {
        let t = star(5, 1);
        assert_eq!(t.out_neighbors(0).len(), 4);
        assert_eq!(t.out_neighbors(3), vec![0]);
    }

    #[test]
    fn fully_connected_structure() {
        let t = fully_connected(4, 1);
        assert_eq!(t.num_links(), 12);
        assert_eq!(t.in_bandwidth(2), 3);
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(3, 1);
        assert_eq!(t.num_links(), 8 * 3);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(0, 2));
        assert!(t.has_link(0, 4));
        assert!(!t.has_link(0, 3));
    }

    #[test]
    fn mesh_structure() {
        let t = mesh2d(2, 3);
        assert_eq!(t.num_nodes(), 6);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(0, 3));
        assert!(!t.has_link(0, 4));
    }

    fn mesh2d(rows: usize, cols: usize) -> Topology {
        super::mesh2d(rows, cols, 1)
    }

    #[test]
    fn dgx1_structure() {
        let t = dgx1();
        assert_eq!(t.num_nodes(), 8);
        // 16 undirected NVLink hops = 32 directed edges.
        assert_eq!(t.num_links(), 32);
        // Every GPU has 6 NVLink units in and out (§5.1.1).
        for n in 0..8 {
            assert_eq!(t.in_bandwidth(n), 6, "GPU {n} in-bandwidth");
            assert_eq!(t.out_bandwidth(n), 6, "GPU {n} out-bandwidth");
        }
        // The double ring hops have bandwidth 2.
        assert_eq!(t.link_bandwidth(0, 1), Some(2));
        assert_eq!(t.link_bandwidth(1, 4), Some(2));
        // The single ring hops have bandwidth 1.
        assert_eq!(t.link_bandwidth(0, 2), Some(1));
        assert_eq!(t.link_bandwidth(3, 6), Some(1));
        // Cross-socket pairs not connected by NVLink.
        assert!(!t.has_link(0, 6));
    }

    #[test]
    fn dgx1_rings_are_disjoint_hamiltonian_cycles() {
        let hops = |order: [usize; 8]| -> BTreeSet<(usize, usize)> {
            (0..8)
                .flat_map(|i| {
                    let a = order[i];
                    let b = order[(i + 1) % 8];
                    [(a.min(b), a.max(b))]
                })
                .collect()
        };
        let double = hops(DGX1_DOUBLE_RING);
        let single = hops(DGX1_SINGLE_RING);
        assert_eq!(double.len(), 8);
        assert_eq!(single.len(), 8);
        assert!(double.is_disjoint(&single));
    }

    #[test]
    fn amd_z52_structure() {
        let t = amd_z52();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_links(), 16);
        for n in 0..8 {
            assert_eq!(t.in_bandwidth(n), 2);
        }
        assert_eq!(t.transport(0, 1), Some("pcie"));
        assert_eq!(t.transport(2, 3), Some("xgmi"));
    }

    #[test]
    fn dgx1_single_links_halves_double_ring() {
        let t = dgx1_single_links();
        assert_eq!(t.link_bandwidth(0, 1), Some(1));
        assert_eq!(t.in_bandwidth(0), 4);
    }

    #[test]
    fn nvswitch_is_a_full_crossbar() {
        let t = nvswitch(16, 1);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_links(), 16 * 15);
        assert_eq!(t.diameter(), Some(1));
        assert_eq!(t.transport(3, 9), Some("nvswitch"));
    }

    #[test]
    fn dual_dgx1_structure() {
        let t = dual_dgx1(4, 1);
        assert_eq!(t.num_nodes(), 16);
        // Intra-box NVLink structure is preserved in both boxes.
        assert_eq!(t.link_bandwidth(0, 1), Some(2));
        assert_eq!(t.link_bandwidth(8, 9), Some(2));
        assert!(!t.has_link(0, 9));
        // Cross-box InfiniBand bridges on the first four GPUs.
        assert!(t.has_link(2, 10));
        assert!(!t.has_link(5, 13));
        assert_eq!(t.transport(2, 10), Some("infiniband"));
        assert!(t.is_strongly_connected());
        assert_eq!(t.diameter(), Some(4));
        // The bisection between the two boxes is the 4 IB links each way.
        let inside: Vec<bool> = (0..16).map(|i| i >= 8).collect();
        assert_eq!(t.cut_in_bandwidth(&inside), 4);
    }

    #[test]
    #[should_panic]
    fn dual_dgx1_requires_at_least_one_cross_link() {
        dual_dgx1(0, 1);
    }

    #[test]
    fn ring_of_rings_structure() {
        let t = ring_of_rings(4, 4, 2, 1);
        assert_eq!(t.num_nodes(), 16);
        // Local ring hops at local bandwidth.
        assert_eq!(t.link_bandwidth(0, 1), Some(2));
        assert_eq!(t.link_bandwidth(5, 6), Some(2));
        // Leader ring at cross bandwidth, on nodes 0, 4, 8, 12.
        assert_eq!(t.link_bandwidth(0, 4), Some(1));
        assert_eq!(t.link_bandwidth(12, 0), Some(1));
        assert_eq!(t.transport(0, 4), Some("network"));
        // No shortcuts between non-leader members of different groups.
        assert!(!t.has_link(1, 5));
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn two_group_ring_of_rings_has_single_bridge() {
        let t = ring_of_rings(2, 2, 2, 1);
        assert_eq!(t.num_nodes(), 4);
        // Exactly one bidi bridge 0<->2, not a doubled pair.
        assert_eq!(t.link_bandwidth(0, 2), Some(1));
        assert_eq!(t.link_bandwidth(2, 0), Some(1));
        assert_eq!(
            t.constraints()
                .iter()
                .filter(|c| c.edges.contains(&(0, 2)))
                .count(),
            1
        );
    }

    #[test]
    fn dgx_rack_structure() {
        let t = dgx_rack(3, 1);
        assert_eq!(t.num_nodes(), 24);
        // Intra-box NVLink structure preserved per box.
        assert_eq!(t.link_bandwidth(8, 9), Some(2));
        assert_eq!(t.transport(16, 18), Some("nvlink-x1"));
        // InfiniBand ring over GPU 0s.
        assert!(t.has_link(0, 8));
        assert!(t.has_link(16, 0));
        assert_eq!(t.transport(0, 8), Some("infiniband"));
        assert!(t.is_strongly_connected());
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn named_and_parameterized_specs() {
        assert_eq!(parse_spec("dgx1").unwrap().num_nodes(), 8);
        assert_eq!(parse_spec("amd").unwrap().name(), "amd-z52");
        assert_eq!(parse_spec("ring:6").unwrap().num_nodes(), 6);
        assert_eq!(parse_spec("hypercube:3").unwrap().num_nodes(), 8);
        assert_eq!(parse_spec("mesh:2x3").unwrap().num_nodes(), 6);
        assert_eq!(parse_spec("nvswitch:4").unwrap().num_nodes(), 4);
        let uni = parse_spec("uniring:4").unwrap();
        assert!(uni.has_link(0, 1) && !uni.has_link(1, 0));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(parse_spec("").is_none());
        assert!(parse_spec("torus:4").is_none());
        assert!(parse_spec("ring:x").is_none());
        assert!(parse_spec("mesh:4").is_none());
    }
}
