//! # sccl-topology
//!
//! Hardware topology models for SCCL synthesis.
//!
//! A [`Topology`] is a set of nodes plus the bandwidth relation `B` of the
//! paper (§3.2.1): constraints `(L, b)` limiting the number of chunks that
//! may cross a set of directed edges `L` in one round. The crate provides
//! the two machines evaluated in the paper — the NVIDIA DGX-1
//! ([`builders::dgx1`]) and the Gigabyte Z52 AMD system
//! ([`builders::amd_z52`]) — along with standard families (rings, chains,
//! stars, hypercubes, meshes, fully-connected graphs) and the metrics the
//! Pareto synthesis procedure needs: diameter and cut-based bandwidth lower
//! bounds.
//!
//! ```
//! use sccl_topology::builders;
//!
//! let dgx1 = builders::dgx1();
//! assert_eq!(dgx1.num_nodes(), 8);
//! assert_eq!(dgx1.diameter(), Some(2));
//! // Every GPU has six NVLink units of ingress bandwidth.
//! assert_eq!(dgx1.in_bandwidth(0), 6);
//! ```

pub mod builders;
pub mod metrics;
pub mod model;
pub mod rational;

pub use model::{BandwidthConstraint, Edge, Topology};
pub use rational::Rational;
