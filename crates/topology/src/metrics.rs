//! Topology metrics used by the Pareto-synthesis procedure (Algorithm 1):
//! the diameter (latency lower bound `a_l`) and cut-based bandwidth lower
//! bounds (`b_l`, the "inverse bisection bandwidth" of the paper).

use crate::model::Topology;
use crate::rational::Rational;
use std::collections::VecDeque;

impl Topology {
    /// Shortest hop distances from `src` to every node (BFS over usable
    /// links). Unreachable nodes get `None`.
    pub fn distances_from(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.num_nodes()];
        dist[src] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            let d = dist[n].expect("visited");
            for m in self.out_neighbors(n) {
                if dist[m].is_none() {
                    dist[m] = Some(d + 1);
                    queue.push_back(m);
                }
            }
        }
        dist
    }

    /// `true` if every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        (0..self.num_nodes()).all(|src| self.distances_from(src).iter().all(|d| d.is_some()))
    }

    /// The diameter of the topology (maximum shortest-path hop count), or
    /// `None` if the topology is not strongly connected.
    ///
    /// This is the latency lower bound `a_l` used by Algorithm 1: no
    /// algorithm can complete an all-to-all-style collective in fewer steps
    /// than the diameter.
    pub fn diameter(&self) -> Option<usize> {
        let mut max = 0;
        for src in 0..self.num_nodes() {
            for d in self.distances_from(src) {
                max = max.max(d?);
            }
        }
        Some(max)
    }

    /// Eccentricity of a node: the largest hop distance from `root` to any
    /// node (`None` if some node is unreachable). This is the latency lower
    /// bound for rooted collectives such as Broadcast.
    pub fn eccentricity(&self, root: usize) -> Option<usize> {
        self.distances_from(root)
            .into_iter()
            .try_fold(0usize, |acc, d| d.map(|d| acc.max(d)))
    }

    /// Total per-round chunk budget of edges crossing *into* the node set
    /// `inside` from its complement.
    pub fn cut_in_bandwidth(&self, inside: &[bool]) -> u64 {
        assert_eq!(inside.len(), self.num_nodes());
        self.links()
            .iter()
            .filter(|&&(s, d)| !inside[s] && inside[d])
            .filter_map(|&(s, d)| self.link_bandwidth(s, d))
            .sum()
    }

    /// Total per-round chunk budget of edges crossing *out of* the node set.
    pub fn cut_out_bandwidth(&self, inside: &[bool]) -> u64 {
        assert_eq!(inside.len(), self.num_nodes());
        self.links()
            .iter()
            .filter(|&&(s, d)| inside[s] && !inside[d])
            .filter_map(|&(s, d)| self.link_bandwidth(s, d))
            .sum()
    }

    /// Bandwidth lower bound `b_l` (in rounds per chunk, `R/C`) for
    /// Allgather-style collectives where every node's data must reach every
    /// other node.
    ///
    /// For every non-empty proper subset `S` of nodes, at least
    /// `P − |S|` distinct chunks (per per-node chunk) must enter `S`, so any
    /// algorithm needs at least `(P − |S|) / in_bw(S)` rounds per chunk. The
    /// bound is the maximum over all cuts; for `P ≤ 20` all cuts are
    /// enumerated, otherwise only single-node and complement cuts are used.
    /// The single-node cut reproduces the paper's DGX-1 bound of 7/6
    /// (§2.4), and the half-cut is the classical bisection bound.
    pub fn allgather_bandwidth_lower_bound(&self) -> Option<Rational> {
        let p = self.num_nodes();
        if p == 1 {
            return Some(Rational::zero());
        }
        let mut best = Rational::zero();
        let consider = |inside: &[bool], best: &mut Rational| -> Option<()> {
            let size = inside.iter().filter(|&&b| b).count();
            if size == 0 || size == p {
                return Some(());
            }
            let outside = p - size;
            let bw = self.cut_in_bandwidth(inside);
            if bw == 0 {
                return None; // disconnected: no finite bound
            }
            *best = (*best).max(Rational::new(outside as u64, bw));
            Some(())
        };
        if p <= 20 {
            for mask in 1..(1u32 << p) - 1 {
                let inside: Vec<bool> = (0..p).map(|i| mask >> i & 1 == 1).collect();
                consider(&inside, &mut best)?;
            }
        } else {
            for n in 0..p {
                let mut inside = vec![false; p];
                inside[n] = true;
                consider(&inside, &mut best)?;
                let complement: Vec<bool> = inside.iter().map(|b| !b).collect();
                consider(&complement, &mut best)?;
            }
        }
        Some(best)
    }

    /// Bandwidth lower bound `R/C` for a rooted Broadcast from `root`: every
    /// other node must receive `C` chunks, so every single-node cut not
    /// containing the root gives a bound of `1 / in_bw(n)`.
    pub fn broadcast_bandwidth_lower_bound(&self, root: usize) -> Option<Rational> {
        let p = self.num_nodes();
        if p == 1 {
            return Some(Rational::zero());
        }
        let mut best = Rational::zero();
        for n in 0..p {
            if n == root {
                continue;
            }
            let mut inside = vec![false; p];
            inside[n] = true;
            let bw = self.cut_in_bandwidth(&inside);
            if bw == 0 {
                return None;
            }
            best = best.max(Rational::new(1, bw));
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use crate::builders;
    use crate::model::Topology;
    use crate::rational::Rational;

    #[test]
    fn ring_diameter() {
        let t = builders::ring(8, 1);
        assert_eq!(t.diameter(), Some(4));
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn unidirectional_ring_diameter() {
        let t = builders::ring_unidirectional(5, 1);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn fully_connected_diameter_is_one() {
        let t = builders::fully_connected(6, 1);
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn disconnected_topology_has_no_diameter() {
        let mut t = Topology::new("split", 4);
        t.add_bidi_link(0, 1, 1);
        t.add_bidi_link(2, 3, 1);
        assert_eq!(t.diameter(), None);
        assert!(!t.is_strongly_connected());
        assert_eq!(t.allgather_bandwidth_lower_bound(), None);
    }

    #[test]
    fn dgx1_diameter_is_two() {
        let t = builders::dgx1();
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn dgx1_allgather_bound_is_seven_sixths() {
        // §2.4: each node must receive 7 chunks over 6 incoming NVLinks.
        let t = builders::dgx1();
        assert_eq!(
            t.allgather_bandwidth_lower_bound(),
            Some(Rational::new(7, 6))
        );
    }

    #[test]
    fn ring_allgather_bound() {
        // Bidirectional ring of 8 with unit links: each node has 2 incoming
        // links and must receive 7 chunks -> 7/2 rounds per chunk.
        let t = builders::ring(8, 1);
        assert_eq!(
            t.allgather_bandwidth_lower_bound(),
            Some(Rational::new(7, 2))
        );
    }

    #[test]
    fn eccentricity_of_chain_ends() {
        let t = builders::chain(5, 1);
        assert_eq!(t.eccentricity(0), Some(4));
        assert_eq!(t.eccentricity(2), Some(2));
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn broadcast_bound_unit_ring() {
        let t = builders::ring(4, 1);
        assert_eq!(
            t.broadcast_bandwidth_lower_bound(0),
            Some(Rational::new(1, 2))
        );
    }

    #[test]
    fn cut_bandwidth_directionality() {
        let mut t = Topology::new("dir", 2);
        t.add_link(0, 1, 3);
        let inside = vec![false, true];
        assert_eq!(t.cut_in_bandwidth(&inside), 3);
        assert_eq!(t.cut_out_bandwidth(&inside), 0);
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::new("solo", 1);
        assert_eq!(t.diameter(), Some(0));
        assert_eq!(t.allgather_bandwidth_lower_bound(), Some(Rational::zero()));
    }

    #[test]
    fn hypercube_diameter() {
        let t = builders::hypercube(3, 1);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn mesh_diameter() {
        let t = builders::mesh2d(3, 4, 1);
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.diameter(), Some(5));
    }

    #[test]
    fn amd_z52_diameter_is_four() {
        // The paper's model of the Gigabyte Z52 is an 8-node ring (§5.2.2),
        // so the latency-optimal Allgather takes 4 steps (Table 5).
        let t = builders::amd_z52();
        assert_eq!(t.diameter(), Some(4));
        assert_eq!(
            t.allgather_bandwidth_lower_bound(),
            Some(Rational::new(7, 2))
        );
    }
}
