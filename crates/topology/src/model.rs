//! The topology model: nodes plus the bandwidth relation `B`.
//!
//! Following §3.2.1 of the paper, a topology over `P` nodes is described by
//! a set of *bandwidth constraints* `(L, b)` where `L` is a set of directed
//! edges and `b` bounds the total number of chunks that may be sent along
//! edges of `L` in a single round. Point-to-point links, per-node egress
//! caps and shared buses are all expressible in this form.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A directed communication edge `src → dst`.
pub type Edge = (usize, usize);

/// One bandwidth constraint `(L, b)`: at most `b` chunks per round summed
/// over all edges in `L`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthConstraint {
    /// The set of directed edges sharing this budget.
    pub edges: BTreeSet<Edge>,
    /// Chunks per round allowed across the whole set.
    pub chunks_per_round: u64,
}

impl BandwidthConstraint {
    /// A point-to-point link constraint `({(src, dst)}, bandwidth)`.
    pub fn link(src: usize, dst: usize, bandwidth: u64) -> Self {
        BandwidthConstraint {
            edges: [(src, dst)].into_iter().collect(),
            chunks_per_round: bandwidth,
        }
    }

    /// A shared constraint over several edges (e.g. a PCIe bus or a per-node
    /// egress cap).
    pub fn shared<I: IntoIterator<Item = Edge>>(edges: I, bandwidth: u64) -> Self {
        BandwidthConstraint {
            edges: edges.into_iter().collect(),
            chunks_per_round: bandwidth,
        }
    }
}

/// A communication topology: a node count, the bandwidth relation `B`, and
/// per-link transport labels used by the cost simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    num_nodes: usize,
    constraints: Vec<BandwidthConstraint>,
    /// Optional transport label per edge (e.g. "nvlink", "pcie", "xgmi").
    /// Purely descriptive; the synthesis engine only reads `constraints`.
    /// Serialized as a list of pairs because JSON map keys must be strings.
    #[serde(with = "transport_serde")]
    transports: BTreeMap<Edge, String>,
}

mod transport_serde {
    use super::Edge;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<Edge, String>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&Edge, &String)> = map.iter().collect();
        entries.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<Edge, String>, D::Error> {
        let entries: Vec<(Edge, String)> = Vec::deserialize(deserializer)?;
        Ok(entries.into_iter().collect())
    }
}

impl Topology {
    /// Create an empty topology with `num_nodes` nodes and no links.
    pub fn new(name: impl Into<String>, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "topology must have at least one node");
        Topology {
            name: name.into(),
            num_nodes,
            constraints: Vec::new(),
            transports: BTreeMap::new(),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `P`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The raw bandwidth relation `B`.
    pub fn constraints(&self) -> &[BandwidthConstraint] {
        &self.constraints
    }

    /// Add a point-to-point link `src → dst` with the given bandwidth
    /// (chunks per round).
    pub fn add_link(&mut self, src: usize, dst: usize, bandwidth: u64) -> &mut Self {
        self.check_node(src);
        self.check_node(dst);
        assert_ne!(src, dst, "self-links are not allowed");
        self.constraints
            .push(BandwidthConstraint::link(src, dst, bandwidth));
        self
    }

    /// Add a bidirectional link: `src → dst` and `dst → src`, each with the
    /// given bandwidth.
    pub fn add_bidi_link(&mut self, a: usize, b: usize, bandwidth: u64) -> &mut Self {
        self.add_link(a, b, bandwidth);
        self.add_link(b, a, bandwidth);
        self
    }

    /// Add a shared constraint over a set of edges.
    pub fn add_shared_constraint<I: IntoIterator<Item = Edge>>(
        &mut self,
        edges: I,
        bandwidth: u64,
    ) -> &mut Self {
        let constraint = BandwidthConstraint::shared(edges, bandwidth);
        for &(s, d) in &constraint.edges {
            self.check_node(s);
            self.check_node(d);
            assert_ne!(s, d, "self-links are not allowed");
        }
        self.constraints.push(constraint);
        self
    }

    /// Label the transport of an edge (descriptive only).
    pub fn set_transport(&mut self, src: usize, dst: usize, transport: impl Into<String>) {
        self.transports.insert((src, dst), transport.into());
    }

    /// Transport label of an edge, if set.
    pub fn transport(&self, src: usize, dst: usize) -> Option<&str> {
        self.transports.get(&(src, dst)).map(|s| s.as_str())
    }

    fn check_node(&self, n: usize) {
        assert!(
            n < self.num_nodes,
            "node {n} out of range for topology with {} nodes",
            self.num_nodes
        );
    }

    /// The usable directed edges `E`: edges that appear in at least one
    /// constraint and in no zero-bandwidth constraint (§3.4).
    pub fn links(&self) -> BTreeSet<Edge> {
        let mut mentioned: BTreeSet<Edge> = BTreeSet::new();
        let mut forbidden: BTreeSet<Edge> = BTreeSet::new();
        for c in &self.constraints {
            for &e in &c.edges {
                mentioned.insert(e);
                if c.chunks_per_round == 0 {
                    forbidden.insert(e);
                }
            }
        }
        mentioned.difference(&forbidden).copied().collect()
    }

    /// `true` if `src` can send directly to `dst`.
    pub fn has_link(&self, src: usize, dst: usize) -> bool {
        self.links().contains(&(src, dst))
    }

    /// Per-round chunk budget of a single edge: the minimum budget over all
    /// constraints containing it (`None` if the edge is unusable).
    pub fn link_bandwidth(&self, src: usize, dst: usize) -> Option<u64> {
        let e = (src, dst);
        if !self.links().contains(&e) {
            return None;
        }
        self.constraints
            .iter()
            .filter(|c| c.edges.contains(&e))
            .map(|c| c.chunks_per_round)
            .min()
    }

    /// Outgoing neighbours of a node.
    pub fn out_neighbors(&self, node: usize) -> Vec<usize> {
        self.links()
            .iter()
            .filter(|&&(s, _)| s == node)
            .map(|&(_, d)| d)
            .collect()
    }

    /// Incoming neighbours of a node.
    pub fn in_neighbors(&self, node: usize) -> Vec<usize> {
        self.links()
            .iter()
            .filter(|&&(_, d)| d == node)
            .map(|&(s, _)| s)
            .collect()
    }

    /// Total per-round chunk budget entering `node`
    /// (sum of per-link budgets of incoming links).
    pub fn in_bandwidth(&self, node: usize) -> u64 {
        self.in_neighbors(node)
            .iter()
            .filter_map(|&s| self.link_bandwidth(s, node))
            .sum()
    }

    /// Total per-round chunk budget leaving `node`.
    pub fn out_bandwidth(&self, node: usize) -> u64 {
        self.out_neighbors(node)
            .iter()
            .filter_map(|&d| self.link_bandwidth(node, d))
            .sum()
    }

    /// The reversed topology: every edge `s → d` becomes `d → s`.
    ///
    /// Used when deriving combining collectives by inversion (§3.5): a
    /// Reduce algorithm is the inverse of a Broadcast algorithm on the
    /// reversed topology.
    pub fn reversed(&self) -> Topology {
        let mut rev = Topology::new(format!("{}-reversed", self.name), self.num_nodes);
        for c in &self.constraints {
            let edges: BTreeSet<Edge> = c.edges.iter().map(|&(s, d)| (d, s)).collect();
            rev.constraints.push(BandwidthConstraint {
                edges,
                chunks_per_round: c.chunks_per_round,
            });
        }
        rev.transports = self
            .transports
            .iter()
            .map(|(&(s, d), t)| ((d, s), t.clone()))
            .collect();
        // An edge-symmetric topology (every bidirectional machine built by
        // `builders`) is its own reversal: return it unchanged, name
        // included, so downstream consumers — notably the scheduler's
        // per-base-problem warm solver pools, which key on the topology
        // value — can recognize that e.g. the Allgather duals of Allreduce
        // and ReduceScatter run on the *same* machine. Constraint order is
        // immaterial to the machine, so compare as sorted sets.
        let sorted = |cs: &[BandwidthConstraint]| {
            let mut cs = cs.to_vec();
            cs.sort_by(|a, b| {
                a.edges
                    .cmp(&b.edges)
                    .then(a.chunks_per_round.cmp(&b.chunks_per_round))
            });
            cs
        };
        if sorted(&rev.constraints) == sorted(&self.constraints)
            && rev.transports == self.transports
        {
            return self.clone();
        }
        rev
    }

    /// Total number of usable directed links.
    pub fn num_links(&self) -> usize {
        self.links().len()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "topology {} ({} nodes)", self.name, self.num_nodes)?;
        for c in &self.constraints {
            let edges: Vec<String> = c.edges.iter().map(|(s, d)| format!("{s}->{d}")).collect();
            writeln!(f, "  ({{{}}}, {})", edges.join(", "), c.chunks_per_round)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_links() {
        let mut t = Topology::new("pair", 2);
        t.add_link(0, 1, 2);
        assert!(t.has_link(0, 1));
        assert!(!t.has_link(1, 0));
        assert_eq!(t.link_bandwidth(0, 1), Some(2));
        assert_eq!(t.link_bandwidth(1, 0), None);
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    fn bidirectional_links() {
        let mut t = Topology::new("pair", 2);
        t.add_bidi_link(0, 1, 3);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(1, 0));
        assert_eq!(t.in_bandwidth(0), 3);
        assert_eq!(t.out_bandwidth(0), 3);
    }

    #[test]
    fn zero_bandwidth_edge_unusable() {
        let mut t = Topology::new("broken", 3);
        t.add_link(0, 1, 1);
        t.add_link(1, 2, 0);
        assert!(t.has_link(0, 1));
        assert!(!t.has_link(1, 2));
        assert_eq!(t.link_bandwidth(1, 2), None);
    }

    #[test]
    fn shared_constraint_bandwidth_is_minimum() {
        let mut t = Topology::new("bus", 3);
        t.add_link(0, 1, 5);
        t.add_link(0, 2, 5);
        // A shared egress cap on node 0 of 1 chunk per round.
        t.add_shared_constraint([(0, 1), (0, 2)], 1);
        assert_eq!(t.link_bandwidth(0, 1), Some(1));
        assert_eq!(t.out_bandwidth(0), 2);
    }

    #[test]
    fn neighbours() {
        let mut t = Topology::new("tri", 3);
        t.add_link(0, 1, 1);
        t.add_link(0, 2, 1);
        t.add_link(2, 0, 1);
        assert_eq!(t.out_neighbors(0), vec![1, 2]);
        assert_eq!(t.in_neighbors(0), vec![2]);
        assert_eq!(t.in_neighbors(1), vec![0]);
    }

    #[test]
    fn reversed_topology_swaps_edges() {
        let mut t = Topology::new("dir", 3);
        t.add_link(0, 1, 2);
        t.add_link(1, 2, 1);
        t.set_transport(0, 1, "nvlink");
        let r = t.reversed();
        assert!(r.has_link(1, 0));
        assert!(r.has_link(2, 1));
        assert!(!r.has_link(0, 1));
        assert_eq!(r.link_bandwidth(1, 0), Some(2));
        assert_eq!(r.transport(1, 0), Some("nvlink"));
        // Reversing twice restores the original link set.
        assert_eq!(r.reversed().links(), t.links());
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let mut t = Topology::new("bad", 2);
        t.add_link(1, 1, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_rejected() {
        let mut t = Topology::new("bad", 2);
        t.add_link(0, 5, 1);
    }

    #[test]
    fn display_contains_constraints() {
        let mut t = Topology::new("pair", 2);
        t.add_link(0, 1, 2);
        let s = t.to_string();
        assert!(s.contains("0->1"));
        assert!(s.contains("2"));
    }
}
