//! A small exact rational type.
//!
//! Bandwidth costs in the (α, β) model are ratios `R/C` of rounds to chunks
//! (§3.6 of the paper); comparing them exactly avoids floating-point ties
//! when ordering candidate algorithms along the Pareto frontier.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul};

/// An exact non-negative rational number `num / den` (always normalized,
/// `den > 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: u64,
    den: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Rational {
    /// Create `num / den`. Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let g = gcd(num, den);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// The integer `n`.
    pub fn from_integer(n: u64) -> Self {
        Rational { num: n, den: 1 }
    }

    pub fn zero() -> Self {
        Rational { num: 0, den: 1 }
    }

    pub fn numerator(&self) -> u64 {
        self.num
    }

    pub fn denominator(&self) -> u64 {
        self.den
    }

    /// Value as an `f64` (for plotting / cost-model arithmetic).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` if this is an integer value.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Smallest integer ≥ this rational.
    pub fn ceil(&self) -> u64 {
        self.num.div_ceil(self.den)
    }

    /// Largest integer ≤ this rational.
    pub fn floor(&self) -> u64 {
        self.num / self.den
    }

    /// The maximum of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply in u128 to avoid overflow.
        let lhs = self.num as u128 * other.den as u128;
        let rhs = other.num as u128 * self.den as u128;
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, other: Rational) -> Rational {
        Rational::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, other: Rational) -> Rational {
        Rational::new(self.num * other.num, self.den * other.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(14, 12), Rational::new(7, 6));
        assert_eq!(Rational::new(0, 5), Rational::zero());
        assert_eq!(Rational::new(8, 4), Rational::from_integer(2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(7, 6) > Rational::from_integer(1));
        assert!(Rational::new(7, 6) < Rational::new(6, 5));
        assert_eq!(
            Rational::new(3, 2).max(Rational::new(7, 6)),
            Rational::new(3, 2)
        );
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            Rational::new(1, 2) + Rational::new(1, 3),
            Rational::new(5, 6)
        );
        assert_eq!(
            Rational::new(2, 3) * Rational::new(3, 4),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn rounding() {
        assert_eq!(Rational::new(7, 6).ceil(), 2);
        assert_eq!(Rational::new(7, 6).floor(), 1);
        assert_eq!(Rational::from_integer(3).ceil(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(7, 6).to_string(), "7/6");
        assert_eq!(Rational::from_integer(4).to_string(), "4");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(7, 6).to_f64() - 1.1666).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
