//! Property-based tests for topology metrics.

use proptest::prelude::*;
use sccl_topology::{builders, Rational, Topology};

/// Strategy: a random connected topology built from a ring backbone plus
/// random extra links, with bandwidths in 1..=3.
fn random_connected_topology() -> impl Strategy<Value = Topology> {
    (
        3usize..8,
        prop::collection::vec((0usize..8, 0usize..8, 1u64..4), 0..12),
        1u64..3,
    )
        .prop_map(|(n, extras, ring_bw)| {
            let mut t = builders::ring(n, ring_bw);
            for (a, b, bw) in extras {
                let a = a % n;
                let b = b % n;
                if a != b {
                    t.add_link(a, b, bw);
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring backbones keep everything connected, with diameter ≤ ⌊n/2⌋.
    #[test]
    fn ring_backbone_is_connected(topo in random_connected_topology()) {
        prop_assert!(topo.is_strongly_connected());
        let d = topo.diameter().expect("connected");
        prop_assert!(d <= topo.num_nodes() / 2);
        prop_assert!(d >= 1);
    }

    /// Adding links never increases the diameter or the Allgather bandwidth
    /// lower bound.
    #[test]
    fn extra_links_only_help(n in 4usize..8, a in 0usize..8, b in 0usize..8) {
        let a = a % n;
        let b = b % n;
        prop_assume!(a != b);
        let base = builders::ring(n, 1);
        let mut extended = base.clone();
        extended.add_bidi_link(a, b, 2);
        let d_base = base.diameter().expect("connected");
        let d_ext = extended.diameter().expect("connected");
        prop_assert!(d_ext <= d_base);
        let b_base = base.allgather_bandwidth_lower_bound().expect("connected");
        let b_ext = extended.allgather_bandwidth_lower_bound().expect("connected");
        prop_assert!(b_ext <= b_base);
    }

    /// Reversing a topology preserves node count, link count and (for the
    /// Allgather bound computed on the reversed graph) symmetry of
    /// bidirectional topologies.
    #[test]
    fn reversal_is_an_involution(topo in random_connected_topology()) {
        let rev = topo.reversed();
        prop_assert_eq!(rev.num_nodes(), topo.num_nodes());
        prop_assert_eq!(rev.num_links(), topo.num_links());
        prop_assert_eq!(rev.reversed().links(), topo.links());
    }

    /// Eccentricity from any node is bounded by the diameter and at least
    /// the distance to any single node.
    #[test]
    fn eccentricity_bounds(topo in random_connected_topology(), node in 0usize..8) {
        let node = node % topo.num_nodes();
        let ecc = topo.eccentricity(node).expect("connected");
        let diameter = topo.diameter().expect("connected");
        prop_assert!(ecc <= diameter);
        let dist = topo.distances_from(node);
        let max_dist = dist.iter().map(|d| d.expect("connected")).max().unwrap_or(0);
        prop_assert_eq!(ecc, max_dist);
    }

    /// The single-node ingress bound is always a valid lower bound on the
    /// cut-based Allgather bound.
    #[test]
    fn ingress_bound_is_dominated_by_cut_bound(topo in random_connected_topology()) {
        let p = topo.num_nodes() as u64;
        let cut_bound = topo.allgather_bandwidth_lower_bound().expect("connected");
        for n in 0..topo.num_nodes() {
            let ingress = topo.in_bandwidth(n);
            prop_assert!(ingress > 0);
            let node_bound = Rational::new(p - 1, ingress);
            prop_assert!(cut_bound >= node_bound);
        }
    }

    /// Bandwidth symmetry of the standard builders: every node of a ring,
    /// hypercube or fully-connected graph has equal in- and out-bandwidth.
    #[test]
    fn builder_bandwidth_symmetry(kind in 0usize..3, n in 2usize..6, bw in 1u64..4) {
        let topo = match kind {
            0 => builders::ring(n.max(2), bw),
            1 => builders::hypercube(n.min(4) as u32, bw),
            _ => builders::fully_connected(n.max(2), bw),
        };
        for node in 0..topo.num_nodes() {
            prop_assert_eq!(topo.in_bandwidth(node), topo.out_bandwidth(node));
        }
    }
}
