//! The `sccl` command-line tool: synthesize collective algorithms for a
//! topology, print Pareto frontiers, probe individual `(C, S, R)` points,
//! compute structural lower bounds and emit generated code — the same
//! workflow the paper's SCCL tool exposes.
//!
//! ```bash
//! cargo run --release --bin sccl -- bounds --topology dgx1 --collective allgather
//! cargo run --release --bin sccl -- probe --topology dgx1 --collective allgather --chunks 2 --steps 2 --rounds 3
//! cargo run --release --bin sccl -- pareto --topology ring:4 --collective allreduce --max-steps 6
//! cargo run --release --bin sccl -- codegen --topology ring:4 --collective allgather --chunks 1 --steps 3 --rounds 3
//! ```

use sccl::prelude::*;
use sccl_core::bounds::{bandwidth_lower_bound, latency_lower_bound};
use sccl_core::encoding::{synthesize, EncodingOptions, SynCollInstance, SynthesisOutcome};
use sccl_solver::{Limits, SolverConfig};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sccl <command> [--key value ...]\n\
         \n\
         commands:\n\
           bounds   --topology T --collective C          structural lower bounds\n\
           probe    --topology T --collective C --chunks N --steps S --rounds R [--timeout SECS]\n\
           pareto   --topology T --collective C [--k K] [--max-steps N] [--max-chunks N]\n\
           codegen  --topology T --collective C --chunks N --steps S --rounds R [--dma]\n\
         \n\
         topologies: dgx1 | dgx1-single | amd | ring:N | uniring:N | chain:N |\n\
                     star:N | fc:N | hypercube:D | mesh:RxC\n\
         collectives: allgather | broadcast | gather | scatter | alltoall |\n\
                      reduce | reducescatter | allreduce (root defaults to 0)"
    );
    ExitCode::FAILURE
}

fn parse_topology(spec: &str) -> Option<Topology> {
    if let Some((kind, arg)) = spec.split_once(':') {
        let parse_n = || arg.parse::<usize>().ok();
        return match kind {
            "ring" => Some(builders::ring(parse_n()?, 1)),
            "uniring" => Some(builders::ring_unidirectional(parse_n()?, 1)),
            "chain" => Some(builders::chain(parse_n()?, 1)),
            "star" => Some(builders::star(parse_n()?, 1)),
            "fc" => Some(builders::fully_connected(parse_n()?, 1)),
            "hypercube" => Some(builders::hypercube(arg.parse().ok()?, 1)),
            "mesh" => {
                let (r, c) = arg.split_once('x')?;
                Some(builders::mesh2d(r.parse().ok()?, c.parse().ok()?, 1))
            }
            _ => None,
        };
    }
    match spec {
        "dgx1" => Some(builders::dgx1()),
        "dgx1-single" => Some(builders::dgx1_single_links()),
        "amd" | "amd-z52" | "z52" => Some(builders::amd_z52()),
        _ => None,
    }
}

fn parse_collective(spec: &str, root: usize) -> Option<Collective> {
    match spec.to_ascii_lowercase().as_str() {
        "allgather" => Some(Collective::Allgather),
        "broadcast" => Some(Collective::Broadcast { root }),
        "gather" => Some(Collective::Gather { root }),
        "scatter" => Some(Collective::Scatter { root }),
        "alltoall" => Some(Collective::Alltoall),
        "reduce" => Some(Collective::Reduce { root }),
        "reducescatter" => Some(Collective::ReduceScatter),
        "allreduce" => Some(Collective::Allreduce),
        _ => None,
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    let Some(topology) = flags.get("topology").and_then(|t| parse_topology(t)) else {
        eprintln!("error: missing or unknown --topology");
        return usage();
    };
    let root = get_usize(&flags, "root", 0);
    let Some(collective) = flags.get("collective").and_then(|c| parse_collective(c, root)) else {
        eprintln!("error: missing or unknown --collective");
        return usage();
    };

    match command.as_str() {
        "bounds" => {
            let reference_chunks = match collective {
                Collective::Alltoall => topology.num_nodes(),
                _ => 1,
            };
            let probe_collective = match collective.inversion_dual() {
                Some(dual) => dual,
                None if collective == Collective::Allreduce => Collective::Allgather,
                None => collective,
            };
            let spec = probe_collective.spec(topology.num_nodes(), reference_chunks);
            match (
                latency_lower_bound(&topology, &spec),
                bandwidth_lower_bound(&topology, &spec, reference_chunks),
            ) {
                (Some(al), Some(bl)) => {
                    println!("topology: {} ({} nodes)", topology.name(), topology.num_nodes());
                    println!("collective: {collective}");
                    if collective == Collective::Allreduce {
                        println!("latency lower bound: {} steps (2x the Allgather bound)", 2 * al);
                    } else {
                        println!("latency lower bound: {al} steps");
                    }
                    println!("bandwidth lower bound (dual): {bl} rounds/chunk");
                    ExitCode::SUCCESS
                }
                _ => {
                    eprintln!("error: topology is not connected for this collective");
                    ExitCode::FAILURE
                }
            }
        }
        "probe" | "codegen" => {
            let chunks = get_usize(&flags, "chunks", 1);
            let steps = get_usize(&flags, "steps", 1);
            let rounds = get_usize(&flags, "rounds", steps) as u64;
            let timeout = get_usize(&flags, "timeout", 300) as u64;
            let probe_collective = match collective.class() {
                sccl_collectives::CollectiveClass::NonCombining => collective,
                _ => {
                    eprintln!(
                        "note: {collective} is combining; probing its non-combining dual and inverting"
                    );
                    collective.inversion_dual().unwrap_or(Collective::Allgather)
                }
            };
            let instance = SynCollInstance {
                spec: probe_collective.spec(topology.num_nodes(), chunks),
                per_node_chunks: chunks,
                num_steps: steps,
                num_rounds: rounds,
            };
            let run = synthesize(
                &topology,
                &instance,
                &EncodingOptions::default(),
                SolverConfig::default(),
                Limits::time(Duration::from_secs(timeout)),
            );
            println!(
                "encoded {} vars, {} clauses, {} PB constraints in {:.2?}",
                run.encoding.num_vars,
                run.encoding.num_clauses,
                run.encoding.num_pb_constraints,
                run.encode_time
            );
            match run.outcome {
                SynthesisOutcome::Satisfiable(mut algorithm) => {
                    println!("SAT in {:.2?}", run.solve_time);
                    if collective.class() == sccl_collectives::CollectiveClass::Combining {
                        algorithm = match collective {
                            Collective::Allreduce => {
                                sccl_core::combining::compose_allreduce(&algorithm)
                            }
                            other => sccl_core::combining::invert(&algorithm, other),
                        };
                    }
                    println!("{algorithm}");
                    if command == "codegen" {
                        let lowering = if flags.contains_key("dma") {
                            LoweringOptions::dma_per_step()
                        } else {
                            LoweringOptions::default()
                        };
                        let program = lower(&algorithm, lowering);
                        println!("{}", generate_cuda(&program));
                    }
                    ExitCode::SUCCESS
                }
                SynthesisOutcome::Unsatisfiable => {
                    println!("UNSAT in {:.2?}: no such k-synchronous algorithm exists", run.solve_time);
                    ExitCode::SUCCESS
                }
                SynthesisOutcome::Unknown => {
                    println!("unknown: solver budget of {timeout}s exhausted");
                    ExitCode::FAILURE
                }
            }
        }
        "pareto" => {
            let config = SynthesisConfig {
                k: get_usize(&flags, "k", 0) as u64,
                max_steps: get_usize(&flags, "max-steps", 8),
                max_chunks: get_usize(&flags, "max-chunks", 8),
                per_instance_limits: Limits::time(Duration::from_secs(
                    get_usize(&flags, "timeout", 120) as u64,
                )),
                ..Default::default()
            };
            match pareto_synthesize(&topology, collective, &config) {
                Ok(report) => {
                    println!(
                        "Pareto frontier of {} on {} (a_l = {}, b_l = {}):",
                        report.collective,
                        report.topology_name,
                        report.latency_lower_bound,
                        report.bandwidth_lower_bound
                    );
                    for entry in &report.entries {
                        println!(
                            "  C={:<3} S={:<3} R={:<3} {:<10} {:.2?}",
                            entry.chunks,
                            entry.steps,
                            entry.rounds,
                            entry.optimality.label(),
                            entry.synthesis_time
                        );
                    }
                    if report.hit_step_cap {
                        println!("  (stopped at --max-steps before reaching the bandwidth bound)");
                    }
                    if report.budget_exhausted {
                        println!("  (some probes hit the per-instance timeout)");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
