//! A minimal, vendored stand-in for the `criterion` crate: the
//! `criterion_group!` / `criterion_main!` macros, benchmark groups, and a
//! `Bencher` that reports mean wall-clock time per iteration. No warmup
//! phases, outlier analysis or HTML reports — just honest timings printed
//! to stdout, which is all the workspace's benches need.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier (`BenchmarkId::from_parameter(...)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark id is expected (`BenchmarkId`,
/// `&str`, `String`), mirroring criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Call `f` repeatedly; record the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm caches once, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean: None,
        };
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => {
                let rate = self.throughput.and_then(|t| match t {
                    Throughput::Bytes(bytes) => {
                        let secs = mean.as_secs_f64();
                        (secs > 0.0).then(|| {
                            format!(" ({:.1} MiB/s)", bytes as f64 / secs / (1 << 20) as f64)
                        })
                    }
                    Throughput::Elements(n) => {
                        let secs = mean.as_secs_f64();
                        (secs > 0.0).then(|| format!(" ({:.0} elem/s)", n as f64 / secs))
                    }
                });
                println!(
                    "bench {}/{}: {:?}/iter over {} iters{}",
                    self.name,
                    id,
                    mean,
                    self.samples,
                    rate.unwrap_or_default()
                );
            }
            None => println!(
                "bench {}/{}: body never called Bencher::iter",
                self.name, id
            ),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id().id;
        self.run_one(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id().id;
        self.run_one(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.run_one(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
