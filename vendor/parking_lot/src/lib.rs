//! A minimal, vendored stand-in for `parking_lot`: the `RwLock` and
//! `Mutex` types with parking_lot's non-poisoning API, implemented over the
//! std primitives (a poisoned std lock propagates the original panic).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
