//! A minimal, vendored stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's
//! property-based tests use: range strategies, tuples, `prop::collection::vec`,
//! `prop::option::of`, `any::<bool>()`, `Just`, `prop_oneof!`, `prop_map`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG (seeded by
//! the test name), so failures are reproducible. Shrinking is not
//! implemented — a failing case panics with its full inputs instead.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject(String),
        /// `prop_assert!`-style failure.
        Fail(String),
    }

    /// Execution parameters for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256** RNG, seeded per test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: [u64; 4],
    }

    fn splitmix64(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seed deterministically from the test's name.
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: [
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! strategy_for_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    strategy_for_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo.wrapping_add(rng.below(hi.wrapping_sub(lo) as u64 + 1) as $t)
                }
            }
        )*};
    }
    strategy_for_int_range!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! strategy_for_tuple {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    strategy_for_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generate any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Build a [`Union`] from boxed strategies.
    pub fn union<T: Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (50/50 `None`/`Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub use super::collection;
    pub use super::option;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(50).saturating_add(1000) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __config.cases
                        );
                    }
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __accepted += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed: {}\ninputs:{}",
                                stringify!($name),
                                __msg,
                                ::std::format!(
                                    ::std::concat!($("\n  ", ::std::stringify!($arg), " = {:?}",)*),
                                    $($arg),*
                                )
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![$(::std::boxed::Box::new($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), Just(2usize)], d in (0usize..3).prop_map(|x| x * 2)) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(d % 2 == 0 && d < 6);
        }
    }
}
