//! A minimal, vendored stand-in for the `rand` crate: a deterministic
//! xoshiro256** generator behind the `rand 0.8` API subset this workspace
//! uses (`StdRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen_bool`, `gen::<u64>()`-style raw output).

use std::ops::Range;

/// Seedable generators (matches `rand::SeedableRng`'s `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

/// The raw entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open). Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<$t>, rng: &mut dyn RngCore) -> $t {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling; bias is negligible for the
                // test-sized spans this workspace draws.
                let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + value as $t
            }
        }
    )*};
}
sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<$t>, rng: &mut dyn RngCore) -> $t {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(value as $t)
            }
        }
    )*};
}
sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(range: Range<f64>, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (not cryptographic, which
    /// matches `StdRng`'s contract of being unspecified).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&trues), "heavily biased: {trues}");
    }
}
