//! A minimal, vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! exactly the serde API surface the workspace uses: the `Serialize` /
//! `Deserialize` traits, `Serializer` / `Deserializer` with associated
//! `Ok`/`Error` types, derive macros for structs and enums (including
//! `#[serde(with = "module")]` fields), and impls for the std types that
//! appear in serialized data (integers, floats, strings, tuples, `Vec`,
//! `Option`, `BTreeSet`, `BTreeMap`, `Duration`).
//!
//! Unlike real serde's visitor-based zero-copy design, this implementation
//! funnels everything through an owned, JSON-shaped [`Content`] tree. That
//! is entirely sufficient for the workspace's use (JSON round-trips of
//! synthesis artifacts) while keeping the vendored code small and auditable.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::convert::Infallible;
use std::marker::PhantomData;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
///
/// JSON-shaped: maps have string keys; integers keep their signedness so
/// `u64::MAX` round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// A value that can be converted into the [`Content`] data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink that consumes one [`Content`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// The canonical serializer: produces the [`Content`] tree itself and
/// cannot fail.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Infallible;
    fn serialize_content(self, content: Content) -> Result<Content, Infallible> {
        Ok(content)
    }
}

/// Serialize any value into its [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(content) => content,
        Err(never) => match never {},
    }
}

/// Run a `#[serde(with = "module")]`-style serialize function against the
/// content serializer (used by the derive macro).
pub fn with_to_content<F>(f: F) -> Content
where
    F: FnOnce(ContentSerializer) -> Result<Content, Infallible>,
{
    match f(ContentSerializer) {
        Ok(content) => content,
        Err(never) => match never {},
    }
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

pub mod de {
    /// Errors a deserializer can produce. Mirrors `serde::de::Error`'s
    /// `custom` constructor, which is all the generated code needs.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A source that yields one [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value that can be reconstructed from the [`Content`] data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializer over an in-memory [`Content`] tree, generic over the error
/// type so nested fields propagate the outer deserializer's error.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Reconstruct a value from a [`Content`] tree.
pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

// ---------------------------------------------------------------------
// Helpers used by generated code
// ---------------------------------------------------------------------

/// Expect a map (struct body) and hand back its fields.
pub fn content_map<E: de::Error>(content: Content) -> Result<Vec<(String, Content)>, E> {
    match content {
        Content::Map(fields) => Ok(fields),
        other => Err(E::custom(format!("expected a map, found {other:?}"))),
    }
}

/// Remove and return a named field, erroring if it is absent.
pub fn take_field<E: de::Error>(
    fields: &mut Vec<(String, Content)>,
    name: &str,
) -> Result<Content, E> {
    match fields.iter().position(|(k, _)| k == name) {
        Some(i) => Ok(fields.remove(i).1),
        None => Err(E::custom(format!("missing field `{name}`"))),
    }
}

/// Remove and deserialize a named field.
pub fn field<'de, T: Deserialize<'de>, E: de::Error>(
    fields: &mut Vec<(String, Content)>,
    name: &str,
) -> Result<T, E> {
    from_content(take_field::<E>(fields, name)?)
}

fn content_u64<E: de::Error>(content: &Content) -> Result<u64, E> {
    match *content {
        Content::U64(v) => Ok(v),
        Content::I64(v) if v >= 0 => Ok(v as u64),
        Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
        ref other => Err(E::custom(format!(
            "expected unsigned integer, found {other:?}"
        ))),
    }
}

fn content_i64<E: de::Error>(content: &Content) -> Result<i64, E> {
    match *content {
        Content::I64(v) => Ok(v),
        Content::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
        Content::F64(v) if v.fract() == 0.0 => Ok(v as i64),
        ref other => Err(E::custom(format!("expected integer, found {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(*self as i64))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self as f64))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_content(to_content(v)),
            None => serializer.serialize_content(Content::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), to_content(v)))
                .collect(),
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), to_content(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_content(Content::Map(entries))
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(to_content(&self.$idx)),+]))
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(self.subsec_nanos() as u64),
            ),
        ]))
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone())
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let v = content_u64::<D::Error>(&content)?;
                <$t>::try_from(v).map_err(|_| de::Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let v = content_i64::<D::Error>(&content)?;
                <$t>::try_from(v).map_err(|_| de::Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!(
                "expected number, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => from_content(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(fields) => fields
                .into_iter()
                .map(|(k, v)| Ok((k, from_content(v)?)))
                .collect(),
            other => Err(de::Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _: PhantomData<$name> = PhantomData;
                            from_content(it.next().expect("length checked"))?
                        },)+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected sequence of length {}, found {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, D)
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = content_map::<D::Error>(deserializer.deserialize_content()?)?;
        let secs: u64 = field(&mut fields, "secs")?;
        let nanos: u32 = field(&mut fields, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}
