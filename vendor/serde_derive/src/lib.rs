//! Vendored minimal `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes this workspace actually uses —
//! named-field structs, unit structs, and enums with unit, named-field and
//! tuple variants — plus the `#[serde(with = "module")]` field attribute.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Generics are intentionally unsupported;
//! the derive panics with a clear message if it meets a shape it does not
//! understand, so failures are loud at compile time rather than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Extract `with = "module"` from the token trees of a `#[serde(...)]`
/// attribute body.
fn parse_serde_attr(tokens: Vec<TokenTree>) -> Option<String> {
    let mut iter = tokens.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ident) = &tt {
            if ident.to_string() == "with" {
                // expect `=` then a string literal
                match (iter.next(), iter.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        return Some(raw.trim_matches('"').to_string());
                    }
                    _ => panic!("serde_derive: malformed #[serde(with = \"...\")] attribute"),
                }
            }
        }
    }
    None
}

/// Consume leading attributes; return the `with` module if a
/// `#[serde(with = "...")]` was among them.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> (usize, Option<String>) {
    let mut with = None;
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(first)) = inner.first() {
                    if first.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            if let Some(w) = parse_serde_attr(args.stream().into_iter().collect()) {
                                with = Some(w);
                            }
                        }
                    }
                }
                pos += 2;
            }
            _ => break,
        }
    }
    (pos, with)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Skip type tokens until a top-level comma (tracking `<`/`>` nesting).
fn skip_type(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth: i32 = 0;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return pos,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

/// Parse the fields of a named-field body `{ ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, with) = skip_attributes(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        pos = skip_type(&tokens, pos);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        fields.push(Field { name, with });
    }
    fields
}

/// Count the fields of a tuple body `( ... )`.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_type(&tokens, pos);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
                if pos == tokens.len() {
                    break; // trailing comma
                }
            }
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attributes(&tokens, pos);
        pos = next;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    loop {
        let (next, _) = skip_attributes(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => {
                let kw = ident.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                pos += 1; // e.g. `unsafe` or other modifiers — skip
            }
            other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
        }
    }
    let is_struct = matches!(&tokens[pos], TokenTree::Ident(i) if i.to_string() == "struct");
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive");
        }
    }
    let shape = if is_struct {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive: tuple structs are not supported by the vendored derive (struct {name})"
            ),
            other => panic!("serde_derive: unexpected struct body for {name}: {other:?}"),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: unexpected enum body for {name}: {other:?}"),
        }
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => {
            "::serde::Serializer::serialize_content(serializer, ::serde::Content::Null)".to_string()
        }
        Shape::NamedStruct(fields) => {
            let mut code = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    None => code.push_str(&format!(
                        "__fields.push((\"{fname}\".to_string(), ::serde::to_content(&self.{fname})));\n"
                    )),
                    Some(module) => code.push_str(&format!(
                        "__fields.push((\"{fname}\".to_string(), ::serde::with_to_content(|__s| {module}::serialize(&self.{fname}, __s))));\n"
                    )),
                }
            }
            code.push_str(
                "::serde::Serializer::serialize_content(serializer, ::serde::Content::Map(__fields))",
            );
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_content(serializer, ::serde::Content::Str(\"{vname}\".to_string())),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            let fname = &f.name;
                            inner.push_str(&format!(
                                "__fields.push((\"{fname}\".to_string(), ::serde::to_content({fname})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {inner} ::serde::Serializer::serialize_content(serializer, ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(__fields))])) }},\n",
                            bindings.join(", ")
                        ));
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_content(serializer, ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::to_content(__f0))])),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = bindings
                            .iter()
                            .map(|b| format!("::serde::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Serializer::serialize_content(serializer, ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))])),\n",
                            bindings.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    None => inits.push_str(&format!(
                        "{fname}: ::serde::field::<_, D::Error>(&mut __fields, \"{fname}\")?,\n"
                    )),
                    Some(module) => inits.push_str(&format!(
                        "{fname}: {module}::deserialize(::serde::ContentDeserializer::<D::Error>::new(::serde::take_field::<D::Error>(&mut __fields, \"{fname}\")?))?,\n"
                    )),
                }
            }
            format!(
                "let __content = ::serde::Deserializer::deserialize_content(deserializer)?;\n\
                 let mut __fields = ::serde::content_map::<D::Error>(__content)?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}\n}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            inits.push_str(&format!(
                                "{fname}: ::serde::field::<_, D::Error>(&mut __fields, \"{fname}\")?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let mut __fields = ::serde::content_map::<D::Error>(__value)?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n\
                             }},\n"
                        ));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::from_content::<_, D::Error>(__value)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                "::serde::from_content::<_, D::Error>(__it.next().expect(\"length checked\"))?".to_string()
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __value {{\n\
                                 ::serde::Content::Seq(__items) if __items.len() == {n} => {{\n\
                                     let mut __it = __items.into_iter();\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n\
                                 }},\n\
                                 __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(format!(\"expected a sequence of length {n} for variant {vname} of {name}, found {{:?}}\", __other))),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let __content = ::serde::Deserializer::deserialize_content(deserializer)?;\n\
                 match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     ::serde::Content::Map(mut __m) if __m.len() == 1 => {{\n\
                         let (__vname, __value) = __m.remove(0);\n\
                         let _ = &__value;\n\
                         match __vname.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }},\n\
                     __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(format!(\"unexpected content for enum {name}: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
