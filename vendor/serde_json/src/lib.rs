//! A minimal, vendored stand-in for `serde_json`, backed by the vendored
//! serde crate's [`Content`] data model: a JSON writer (compact and
//! pretty) and a recursive-descent JSON parser.

use serde::{de, Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Re-export of the self-describing value type (named `Value` for source
/// compatibility with real serde_json).
pub type Value = Content;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::new("cannot serialize non-finite float"));
    }
    // Rust's Display for f64 produces the shortest round-trippable form.
    out.push_str(&format!("{v}"));
    Ok(())
}

fn write_compact(out: &mut String, content: &Content) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v)?,
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item)?;
            }
            out.push(']');
        }
        Content::Map(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(out: &mut String, content: &Content, indent: usize) -> Result<(), Error> {
    const STEP: &str = "  ";
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Content::Map(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other)?,
    }
    Ok(())
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &serde::to_content(value))?;
    Ok(out)
}

/// Serialize a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &serde::to_content(value), 0)?;
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", message.into(), self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                byte as char, b as char
            ))),
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn consume_keyword(&mut self, keyword: &str) -> bool {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.consume_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.error("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.consume_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.error("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.consume_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.error("invalid keyword"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse JSON text into any deserializable value.
pub fn from_str<'de, T: Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let mut parser = Parser::new(input);
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    serde::from_content(content)
}

/// Parse JSON bytes into any deserializable value.
pub fn from_slice<'de, T: Deserialize<'de>>(input: &'de [u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|_| Error::new("input is not UTF-8"))?;
    let mut parser = Parser::new(text);
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    serde::from_content(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<(u64, String)> = vec![(1, "x".into()), (2, "y".into())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"x"],[2,"y"]]"#);
        assert_eq!(from_str::<Vec<(u64, String)>>(&json).unwrap(), v);
    }

    #[test]
    fn options_round_trip() {
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u64)).unwrap(), "3");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<u64> = vec![1, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 garbage").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
